// qvt_tool — command-line front end for the library.
//
//   qvt_tool generate --out col.desc [--images 200] [--descriptors 100]
//                     [--modes 20] [--seed 42] [--build-threads N]
//                     [--heavy-mode-weight 0.0]
//   qvt_tool build    --collection col.desc --out idx
//                     [--chunker sr|rr|kmeans|balanced-kmeans|birch|bag]
//                     [--chunk-size 1000] [--max-chunk-pop 0]
//                     [--build-threads N] [--tree-out tree.srt]
//                     [--pq-out codes.pqc] [--pq-m 8] [--pq-ksub 256]
//                     [--pq-iters 25] [--pq-seed 7]
//   qvt_tool info     [--index idx] [--dyn base] [--mmap 0|1]
//                     [--pq codes.pqc] [--cache-pages 0]
//                     [--collection col.desc (per-method resident memory)]
//   qvt_tool fsck     [--index idx] [--dyn base] [--tree tree.srt]
//                     [--pq codes.pqc] [--max-chunk-pop 0]
//   qvt_tool tail     --collection col.desc --index idx [--queries 200]
//                     [--k 10] [--budgets 1,2,4,8,0] [--threads 1]
//                     [--seed 7] [--max-chunk-pop 0] [--label chunked]
//                     [--json BENCH_tail.json]
//   qvt_tool methods  [--names 1]
//   qvt_tool search   --collection col.desc --index idx --query-pos 123
//                     [--k 10] [--max-chunks 0 (=exact)] [--prefetch-depth 4]
//                     [--method chunked] [--method-params "key=val,..."]
//   qvt_tool batch    --collection col.desc --index idx [--queries 1000]
//                     [--k 10] [--threads 1] [--max-chunks 0] [--seed 7]
//                     [--cache-pages 0] [--verify 0] [--prefetch-depth 4]
//                     [--method chunked] [--method-params "key=val,..."]
//                     [--check-recall 0.0] [--shared-scan on|off]
//   qvt_tool ingest   --dyn base --collection col.desc [--offset 0]
//                     [--count 0 (=rest)] [--delete-every 0]
//                     [--method chunked] [--method-params "..."]
//                     [--buffer-capacity 1024] [--scale-factor 4]
//                     [--policy tiering|leveling] [--chunk-size 256]
//   qvt_tool delete   --dyn base --ids 1,2,3
//   qvt_tool compact  --dyn base
//
// build --chunker balanced-kmeans enforces a per-chunk population bound
// during assignment (--max-chunk-pop, or a 1.05x fair-share bound when 0);
// with any other chunker, --max-chunk-pop applies the post-hoc rebalancing
// passes (split oversized, pack undersized) to its output. generate
// --heavy-mode-weight W puts fraction W of all descriptors in one dense
// mode — the tail-latency stress collection. tail sweeps chunk budgets and
// reports delivered recall vs the p50/p95/p99 latency distribution,
// optionally writing the BENCH_tail.json document.
//
// build --pq-out additionally trains per-subspace product-quantization
// codebooks on the collection, encodes every descriptor to m bytes, and
// writes the "QVTPQC01" compressed-collection file — the in-memory first
// pass of --method pq (pass it as file=codes.pqc in --method-params, or
// let pq train at Prepare). info --pq and fsck --pq inspect/verify one.
//
// --method picks any search method registered in MethodRegistry ("methods"
// lists them): chunked (the paper's §4.3 searcher; needs --index),
// exact-scan, lsh, va-file, medrank, psphere, pq. --method-params passes
// comma-separated key=value options to the method's factory; unknown keys
// are rejected. --check-recall R computes exact-scan ground truth for the
// sampled workload and fails (exit 1) when mean recall@k drops below R —
// the CI smoke harness for the method matrix.
//
// --prefetch-depth sets the chunk read-ahead window (0 disables the
// pipeline); its default also honors the QVT_PREFETCH_DEPTH environment
// variable. Results are bit-identical at every depth.
//
// batch --shared-scan on (the default; QVT_SHARED_SCAN=0 overrides to off)
// runs methods that support it (chunked, pq) chunk-major: the queries'
// chunk schedules are merged, each chunk is fetched and decoded once for
// all the queries that want it, and identical query vectors share one
// plan and scan. Results are bit-identical to --shared-scan off; the
// report adds the coalescing ledger.
//
// ingest/delete/compact drive a dynamic (Bentley-Saxe) index at path
// prefix --dyn: ingest creates the index on first use (--method picks the
// wrapped search method, the extension knobs pick the merge geometry) and
// streams collection rows into it — flushes and merge cascades fire
// automatically as the mutable buffer fills; --delete-every N interleaves a
// tombstone for the row inserted N positions earlier, the mixed-workload
// stressor. delete tombstones explicit ids; compact folds everything into
// one shard, purging deleted rows — after which answers are bit-identical
// to a static build over the live rows. Each command persists with an
// atomic manifest rename on exit, so a crash mid-run (including the
// QVT_DYN_CRASH test hook, which kills the process after a merge's
// artifacts are written but before any save) leaves the previous manifest
// intact. info --dyn prints the level occupancy; fsck --dyn verifies the
// manifest CRC, record invariants, and every shard artifact.
//
// info --collection additionally instantiates every registered method over
// that collection and prints one resident-memory line per method — what
// each first pass keeps in RAM to answer queries.
//
// --mmap 1 forces the zero-copy mapped index open, --mmap 0 the
// deserializing open (CRC + per-entry checks up front); without the flag
// the QVT_MMAP environment variable decides (default: mapped). Results
// are byte-identical either way.
//
// fsck runs every offline integrity check the open paths split between
// them: envelope + header geometry, the full-file CRC, per-entry
// invariants, and each chunk payload against its index sphere (--tree
// additionally checks a static SR-tree file's structure). Defects are
// reported with file path and byte offset; exit 1, never an abort.
//
// --build-threads sets how many threads generation and index construction
// use (default: QVT_BUILD_THREADS, else hardware concurrency). Artifacts
// are bit-identical at every thread count; a per-phase wall-time ledger is
// printed after the work.
//
// The collection file uses the paper's 100-byte record format, so indexes
// built here interoperate with every library API.

#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <map>
#include <memory>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "bench_util/figures.h"
#include "bench_util/runner.h"
#include "cluster/bag.h"
#include "cluster/balanced_kmeans.h"
#include "cluster/birch.h"
#include "cluster/kmeans.h"
#include "cluster/pq.h"
#include "cluster/rebalance.h"
#include "cluster/round_robin.h"
#include "cluster/srtree_chunker.h"
#include "core/batch_searcher.h"
#include "core/chunk_index.h"
#include "core/evaluation.h"
#include "core/exact_scan.h"
#include "core/search_method.h"
#include "core/searcher.h"
#include "descriptor/generator.h"
#include "descriptor/workload.h"
#include "dynamic/dynamic_index.h"
#include "dynamic/manifest.h"
#include "srtree/static_sr_tree.h"
#include "storage/chunk_cache.h"
#include "storage/pq_file.h"
#include "util/build_stats.h"
#include "util/parallel_for.h"
#include "util/random.h"
#include "util/stats.h"

namespace qvt {
namespace {

/// Shared --prefetch-depth handling: flag wins, else QVT_PREFETCH_DEPTH,
/// else the library default of 4.
PrefetcherOptions PrefetchFromFlag(int64_t depth_flag) {
  PrefetcherOptions prefetch;
  if (depth_flag >= 0) prefetch.depth = static_cast<size_t>(depth_flag);
  return prefetch;
}

class Flags {
 public:
  Flags(int argc, char** argv, int first) {
    for (int i = first; i + 1 < argc; i += 2) {
      if (std::strncmp(argv[i], "--", 2) != 0) continue;
      values_[argv[i] + 2] = argv[i + 1];
    }
  }

  std::string Get(const std::string& name, const std::string& fallback) const {
    const auto it = values_.find(name);
    return it == values_.end() ? fallback : it->second;
  }
  int64_t GetInt(const std::string& name, int64_t fallback) const {
    const auto it = values_.find(name);
    return it == values_.end() ? fallback : std::stoll(it->second);
  }
  double GetDouble(const std::string& name, double fallback) const {
    const auto it = values_.find(name);
    return it == values_.end() ? fallback : std::stod(it->second);
  }
  bool Has(const std::string& name) const { return values_.count(name) != 0; }

 private:
  std::map<std::string, std::string> values_;
};

int Fail(const Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  return 1;
}

/// Shared --mmap handling: flag wins (1 = mapped, 0 = deserializing),
/// else kAuto defers to the QVT_MMAP environment variable.
IndexOpenMode OpenModeFromFlags(const Flags& flags) {
  if (!flags.Has("mmap")) return IndexOpenMode::kAuto;
  return flags.GetInt("mmap", 1) != 0 ? IndexOpenMode::kMmap
                                      : IndexOpenMode::kDeserialize;
}

/// Applies --build-threads (when present) and resets the phase ledger so the
/// report below covers just this invocation.
void ApplyBuildThreads(const Flags& flags) {
  if (flags.Has("build-threads")) {
    SetBuildThreads(static_cast<size_t>(flags.GetInt("build-threads", 0)));
  }
  BuildStats::Global().Reset();
}

void PrintBuildStats() {
  std::printf("build phases (%zu thread%s):\n", BuildThreads(),
              BuildThreads() == 1 ? "" : "s");
  std::ostringstream ledger;
  BuildStats::Global().Print(ledger);
  std::fputs(ledger.str().c_str(), stdout);
}

int CmdGenerate(const Flags& flags) {
  if (!flags.Has("out")) {
    std::fprintf(stderr, "generate requires --out\n");
    return 2;
  }
  GeneratorConfig config;
  config.num_images = static_cast<size_t>(flags.GetInt("images", 200));
  config.descriptors_per_image =
      static_cast<size_t>(flags.GetInt("descriptors", 100));
  config.num_modes = static_cast<size_t>(flags.GetInt("modes", 20));
  config.seed = static_cast<uint64_t>(flags.GetInt("seed", 42));
  config.heavy_mode_weight = flags.GetDouble("heavy-mode-weight", 0.0);
  if (config.heavy_mode_weight < 0.0 || config.heavy_mode_weight >= 1.0) {
    std::fprintf(stderr, "--heavy-mode-weight must be in [0, 1)\n");
    return 2;
  }
  ApplyBuildThreads(flags);

  const Collection collection = GenerateCollection(config);
  const Status status = collection.Save(Env::Posix(), flags.Get("out", ""));
  if (!status.ok()) return Fail(status);
  std::printf("wrote %zu descriptors (%zu images) to %s\n", collection.size(),
              config.num_images, flags.Get("out", "").c_str());
  PrintBuildStats();
  return 0;
}

int CmdBuild(const Flags& flags) {
  if (!flags.Has("collection") || !flags.Has("out")) {
    std::fprintf(stderr, "build requires --collection and --out\n");
    return 2;
  }
  auto collection = Collection::Load(Env::Posix(), flags.Get("collection", ""));
  if (!collection.ok()) return Fail(collection.status());
  ApplyBuildThreads(flags);

  const size_t chunk_size =
      static_cast<size_t>(flags.GetInt("chunk-size", 1000));
  const size_t max_chunk_pop =
      static_cast<size_t>(flags.GetInt("max-chunk-pop", 0));
  const std::string kind = flags.Get("chunker", "sr");

  std::unique_ptr<Chunker> chunker;
  if (kind == "sr") {
    chunker = std::make_unique<SrTreeChunker>(chunk_size);
  } else if (kind == "rr") {
    chunker = std::make_unique<RoundRobinChunker>(chunk_size);
  } else if (kind == "kmeans") {
    KMeansConfig config;
    config.num_clusters =
        std::max<size_t>(1, collection->size() / chunk_size);
    chunker = std::make_unique<KMeansChunker>(config);
  } else if (kind == "balanced-kmeans" || kind == "bkm") {
    BalancedKMeansConfig config;
    config.base.num_clusters =
        std::max<size_t>(1, collection->size() / chunk_size);
    config.max_population = max_chunk_pop;
    chunker = std::make_unique<BalancedKMeansChunker>(config);
  } else if (kind == "birch") {
    BirchConfig config;
    config.max_subclusters =
        std::max<size_t>(1, collection->size() / chunk_size * 2);
    chunker = std::make_unique<BirchChunker>(config);
  } else if (kind == "bag") {
    chunker = std::make_unique<BagChunker>(
        std::max<size_t>(1, collection->size() / chunk_size * 2),
        BagConfig{});
  } else {
    std::fprintf(stderr, "unknown chunker '%s'\n", kind.c_str());
    return 2;
  }

  auto chunking = chunker->FormChunks(*collection);
  if (!chunking.ok()) return Fail(chunking.status());
  // The balanced chunker already honors the bound during assignment; for
  // every other chunker a requested bound is applied post hoc.
  if (max_chunk_pop > 0 && kind != "balanced-kmeans" && kind != "bkm") {
    RebalanceOptions options;
    options.max_population = max_chunk_pop;
    auto rebalanced =
        RebalanceChunking(std::move(chunking).value(), *collection, options);
    if (!rebalanced.ok()) return Fail(rebalanced.status());
    chunking = std::move(rebalanced);
    std::printf("rebalanced to max population %zu\n", max_chunk_pop);
  }
  // --tree-out additionally persists the static SR-tree (the structure the
  // sr chunker derives its leaves from) in the "QVTSRT01" format, so fsck
  // and the static search path have a file to work with.
  if (flags.Has("tree-out")) {
    if (kind != "sr") {
      std::fprintf(stderr, "--tree-out requires --chunker sr\n");
      return 2;
    }
    SrTreeConfig tree_config;
    tree_config.leaf_capacity = chunk_size;
    SrTree tree(&*collection, tree_config);
    tree.BuildStatic();
    const std::string tree_path = flags.Get("tree-out", "");
    if (const Status saved = tree.SaveStatic(Env::Posix(), tree_path);
        !saved.ok()) {
      return Fail(saved);
    }
    std::printf("wrote static SR-tree to %s\n", tree_path.c_str());
  }
  auto index =
      ChunkIndex::Build(*collection, *chunking, Env::Posix(),
                        ChunkIndexPaths::ForBase(flags.Get("out", "")));
  if (!index.ok()) return Fail(index.status());
  std::printf("built %zu chunks (%zu descriptors retained, %zu outliers) "
              "with %s\n",
              index->num_chunks(),
              static_cast<size_t>(index->total_descriptors()),
              chunking->outliers.size(), chunker->name().c_str());
  std::printf("populations: %s\n", chunking->Populations().ToString().c_str());
  // --pq-out: train + encode the compressed in-memory first pass alongside
  // the chunk index, into the "QVTPQC01" file --method pq can open.
  if (flags.Has("pq-out")) {
    PqConfig pq_config;
    pq_config.m = static_cast<size_t>(flags.GetInt("pq-m", 8));
    pq_config.ksub = static_cast<size_t>(flags.GetInt("pq-ksub", 256));
    pq_config.max_iterations =
        static_cast<size_t>(flags.GetInt("pq-iters", 25));
    pq_config.seed = static_cast<uint64_t>(flags.GetInt("pq-seed", 7));
    auto codebook = TrainPq(*collection, pq_config);
    if (!codebook.ok()) return Fail(codebook.status());
    auto codes = PqEncode(*collection, *codebook);
    if (!codes.ok()) return Fail(codes.status());
    const std::string pq_path = flags.Get("pq-out", "");
    if (const Status written =
            WritePqFile(Env::Posix(), pq_path, codebook->dim, codebook->m,
                        codebook->ksub, codebook->centroids, *codes,
                        collection->Ids());
        !written.ok()) {
      return Fail(written);
    }
    std::printf("wrote pq codes to %s: m=%zu x ksub=%zu, %zu bytes/row "
                "(%.1fx smaller than %zu-byte records)\n",
                pq_path.c_str(), codebook->m, codebook->ksub, codebook->m,
                static_cast<double>(DescriptorRecordBytes(codebook->dim)) /
                    static_cast<double>(codebook->m),
                DescriptorRecordBytes(codebook->dim));
  }
  PrintBuildStats();
  return 0;
}

/// Shared dynamic-index configuration: the wrapped method and the merge
/// geometry. The method and params only matter when the index is created;
/// on reopen the manifest's recorded choice wins.
StatusOr<DynamicOptions> DynamicOptionsFromFlags(const Flags& flags) {
  DynamicOptions options;
  options.method = flags.Get("method", "chunked");
  options.method_params = flags.Get("method-params", "");
  options.extension.buffer_capacity =
      static_cast<size_t>(flags.GetInt("buffer-capacity", 1024));
  options.extension.scale_factor =
      static_cast<size_t>(flags.GetInt("scale-factor", 4));
  const std::string policy = flags.Get("policy", "tiering");
  if (policy == "tiering") {
    options.extension.policy = MergePolicy::kTiering;
  } else if (policy == "leveling") {
    options.extension.policy = MergePolicy::kLeveling;
  } else {
    return Status::InvalidArgument("--policy must be tiering or leveling");
  }
  options.target_chunk_size =
      static_cast<size_t>(flags.GetInt("chunk-size", 256));
  options.open_mode = OpenModeFromFlags(flags);
  return options;
}

/// Reopens the dynamic index at --dyn; ingest additionally creates a fresh
/// one when nothing has been saved there yet.
StatusOr<std::unique_ptr<DynamicIndex>> OpenOrCreateDynamic(
    const Flags& flags, bool create_if_missing) {
  auto options = DynamicOptionsFromFlags(flags);
  if (!options.ok()) return options.status();
  const std::string base = flags.Get("dyn", "");
  auto opened = DynamicIndex::Open(Env::Posix(), base, *options);
  if (opened.ok() || !opened.status().IsNotFound() || !create_if_missing) {
    return opened;
  }
  std::printf("creating dynamic index at %s (method %s)\n", base.c_str(),
              options->method.c_str());
  return DynamicIndex::Create(Env::Posix(), base, *std::move(options));
}

// Streams collection rows into the dynamic index at --dyn (created on first
// use), letting buffer flushes and merge cascades fire as they may.
// --delete-every N interleaves deletes of rows inserted N positions earlier
// — old enough to usually live in a shard already, so tombstones cross the
// buffer/shard boundary. State persists in one atomic manifest rename at
// the end; a crash mid-run (QVT_DYN_CRASH) loses only this run's rows.
int CmdIngest(const Flags& flags) {
  if (!flags.Has("dyn") || !flags.Has("collection")) {
    std::fprintf(stderr, "ingest requires --dyn and --collection\n");
    return 2;
  }
  auto collection = Collection::Load(Env::Posix(), flags.Get("collection", ""));
  if (!collection.ok()) return Fail(collection.status());
  ApplyBuildThreads(flags);

  auto index = OpenOrCreateDynamic(flags, /*create_if_missing=*/true);
  if (!index.ok()) return Fail(index.status());

  const size_t offset = static_cast<size_t>(flags.GetInt("offset", 0));
  if (offset > collection->size()) {
    std::fprintf(stderr, "--offset past the collection (%zu rows)\n",
                 collection->size());
    return 2;
  }
  const size_t remaining = collection->size() - offset;
  size_t count = static_cast<size_t>(flags.GetInt("count", 0));
  if (count == 0 || count > remaining) count = remaining;
  const size_t delete_every =
      static_cast<size_t>(flags.GetInt("delete-every", 0));

  const auto start = std::chrono::steady_clock::now();
  std::vector<DescriptorId> inserted;
  inserted.reserve(count);
  size_t skipped = 0;
  size_t deleted = 0;
  for (size_t i = 0; i < count; ++i) {
    const size_t pos = offset + i;
    const Status status = (*index)->Insert(
        collection->Id(pos), collection->Vector(pos), collection->Image(pos));
    if (status.IsAlreadyExists()) {
      ++skipped;  // duplicate id in the source; the live row wins
      continue;
    }
    if (!status.ok()) return Fail(status);
    inserted.push_back(collection->Id(pos));
    if (delete_every > 0 && inserted.size() % delete_every == 0 &&
        inserted.size() > delete_every) {
      const Status dead =
          (*index)->Delete(inserted[inserted.size() - 1 - delete_every]);
      if (!dead.ok()) return Fail(dead);
      ++deleted;
    }
  }
  if (const Status saved = (*index)->Save(); !saved.ok()) return Fail(saved);
  const double wall_s = std::chrono::duration<double>(
                            std::chrono::steady_clock::now() - start)
                            .count();

  const DynamicStats stats = (*index)->Stats();
  std::printf("ingested %zu rows (%zu duplicate ids skipped, %zu deleted) "
              "in %.3f s — %.0f inserts/s\n",
              inserted.size(), skipped, deleted, wall_s,
              wall_s > 0 ? static_cast<double>(inserted.size()) / wall_s
                         : 0.0);
  std::printf("index: %s\n", (*index)->Describe().c_str());
  std::printf("levels: %s\n", (*index)->DescribeLevels().c_str());
  std::printf("writer: %llu flushes, %llu merges, %.1f ms building shards\n",
              static_cast<unsigned long long>(stats.flushes),
              static_cast<unsigned long long>(stats.merges),
              stats.build_wall_micros / 1000.0);
  PrintBuildStats();
  return 0;
}

// Tombstones explicit descriptor ids in the dynamic index at --dyn. Ids
// that are not live (never inserted, or already deleted) are reported and
// fail the command, matching the library's Delete contract.
int CmdDeleteRows(const Flags& flags) {
  if (!flags.Has("dyn") || !flags.Has("ids")) {
    std::fprintf(stderr, "delete requires --dyn and --ids\n");
    return 2;
  }
  auto index = OpenOrCreateDynamic(flags, /*create_if_missing=*/false);
  if (!index.ok()) return Fail(index.status());
  size_t deleted = 0;
  size_t failures = 0;
  std::stringstream list(flags.Get("ids", ""));
  std::string item;
  while (std::getline(list, item, ',')) {
    if (item.empty()) continue;
    const auto id = static_cast<DescriptorId>(std::stoull(item));
    if (const Status status = (*index)->Delete(id); !status.ok()) {
      std::fprintf(stderr, "delete %u: %s\n", id, status.ToString().c_str());
      ++failures;
    } else {
      ++deleted;
    }
  }
  if (const Status saved = (*index)->Save(); !saved.ok()) return Fail(saved);
  std::printf("deleted %zu id(s); %zu live rows, %zu tombstones pending\n",
              deleted, (*index)->live_rows(), (*index)->num_tombstones());
  return failures == 0 ? 0 : 1;
}

// Folds buffer + every shard of the dynamic index at --dyn into a single
// shard, physically purging deleted rows and dropping every tombstone —
// after which answers are bit-identical to a static build over the live
// rows.
int CmdCompact(const Flags& flags) {
  if (!flags.Has("dyn")) {
    std::fprintf(stderr, "compact requires --dyn\n");
    return 2;
  }
  ApplyBuildThreads(flags);
  auto index = OpenOrCreateDynamic(flags, /*create_if_missing=*/false);
  if (!index.ok()) return Fail(index.status());
  std::printf("before: %s\n", (*index)->DescribeLevels().c_str());
  const auto start = std::chrono::steady_clock::now();
  if (const Status status = (*index)->Compact(); !status.ok()) {
    return Fail(status);
  }
  if (const Status saved = (*index)->Save(); !saved.ok()) return Fail(saved);
  const double wall_ms = std::chrono::duration<double, std::milli>(
                             std::chrono::steady_clock::now() - start)
                             .count();
  std::printf("after:  %s\n", (*index)->DescribeLevels().c_str());
  std::printf("compacted to %zu live rows in %.1f ms; answers now match a "
              "static %s build\n",
              (*index)->live_rows(), wall_ms,
              (*index)->options().method.c_str());
  PrintBuildStats();
  return 0;
}

int CmdInfo(const Flags& flags) {
  if (!flags.Has("index") && !flags.Has("dyn") && !flags.Has("collection")) {
    std::fprintf(stderr, "info requires --index, --dyn, or --collection\n");
    return 2;
  }
  std::optional<StatusOr<ChunkIndex>> index;
  if (flags.Has("index")) {
    const auto open_start = std::chrono::steady_clock::now();
    index.emplace(ChunkIndex::Open(
        Env::Posix(), ChunkIndexPaths::ForBase(flags.Get("index", "")),
        kDescriptorDim, OpenModeFromFlags(flags)));
    const double open_micros =
        std::chrono::duration<double, std::micro>(
            std::chrono::steady_clock::now() - open_start)
            .count();
    if (!index->ok()) return Fail(index->status());

    uint64_t pages = 0;
    for (const ChunkLocation& loc : (*index)->locations()) {
      pages += loc.num_pages;
    }
    const IndexFileHeader& h = (*index)->file_header();
    std::printf("format:            QVTIDX v%u, dim %u, sections at "
                "%llu/%llu/%llu, footer at %llu\n",
                h.version, h.dim,
                static_cast<unsigned long long>(h.centroids_off),
                static_cast<unsigned long long>(h.radii_off),
                static_cast<unsigned long long>(h.directory_off),
                static_cast<unsigned long long>(h.footer_off));
    std::printf("open:              %.3f ms (%s)\n", open_micros / 1000.0,
                (*index)->mapped() ? "mmap, zero-copy"
                                   : "deserialize, CRC verified");
    std::printf("chunks:            %zu\n", (*index)->num_chunks());
    std::printf("descriptors:       %llu\n",
                static_cast<unsigned long long>(
                    (*index)->total_descriptors()));
    std::printf("pages:             %llu (%.1f MiB padded)\n",
                static_cast<unsigned long long>(pages),
                static_cast<double>(pages) * kPageSize / (1024.0 * 1024.0));
    std::printf("populations:       %s\n",
                (*index)->populations().ToString().c_str());

    // Resident memory of the chunked first pass: what it keeps in RAM while
    // answering queries (the chunk payload itself stays on disk).
    const size_t n = (*index)->num_chunks();
    const size_t centroid_bytes = n * (*index)->dim() * sizeof(float);
    const size_t radii_bytes = n * sizeof(double);
    const size_t directory_bytes = n * sizeof(ChunkLocation);
    std::printf("resident memory:\n");
    std::printf("  chunked:         %.1f KiB (centroid matrix %.1f KiB, "
                "radii %.1f KiB, directory %.1f KiB)\n",
                (centroid_bytes + radii_bytes + directory_bytes) / 1024.0,
                centroid_bytes / 1024.0, radii_bytes / 1024.0,
                directory_bytes / 1024.0);
  }
  if (flags.Has("pq")) {
    if (!flags.Has("index")) std::printf("resident memory:\n");
    auto pq = OpenPqFile(Env::Posix(), flags.Get("pq", ""), 0,
                         /*mapped=*/false);
    if (!pq.ok()) return Fail(pq.status());
    const size_t codebook_bytes = pq->codebooks().size() * sizeof(float);
    const size_t code_bytes = pq->codes().size();
    const size_t id_bytes = pq->ids().size() * sizeof(uint32_t);
    std::printf("  pq:              %.1f KiB (codebooks %.1f KiB, codes "
                "%.1f KiB at %zu B/row, ids %.1f KiB) — QVTPQC v%u, "
                "m=%zu x ksub=%zu, %llu rows\n",
                (codebook_bytes + code_bytes + id_bytes) / 1024.0,
                codebook_bytes / 1024.0, code_bytes / 1024.0, pq->m(),
                id_bytes / 1024.0, pq->header().version, pq->m(),
                pq->ksub(),
                static_cast<unsigned long long>(pq->num_vectors()));
  }
  const uint64_t cache_pages =
      static_cast<uint64_t>(flags.GetInt("cache-pages", 0));
  if (cache_pages > 0) {
    std::printf("  chunk cache:     %.1f KiB capacity (%llu pages x %zu B)\n",
                static_cast<double>(cache_pages) * kPageSize / 1024.0,
                static_cast<unsigned long long>(cache_pages), kPageSize);
  }

  if (flags.Has("dyn")) {
    auto options = DynamicOptionsFromFlags(flags);
    if (!options.ok()) return Fail(options.status());
    const std::string base = flags.Get("dyn", "");
    const auto open_start = std::chrono::steady_clock::now();
    auto dyn = DynamicIndex::Open(Env::Posix(), base, *std::move(options));
    const double open_micros =
        std::chrono::duration<double, std::micro>(
            std::chrono::steady_clock::now() - open_start)
            .count();
    if (!dyn.ok()) return Fail(dyn.status());
    std::printf("dynamic index %s:\n", base.c_str());
    std::printf("  open:            %.3f ms\n", open_micros / 1000.0);
    std::printf("  method:          %s\n", (*dyn)->Describe().c_str());
    std::printf("  levels:          %s\n", (*dyn)->DescribeLevels().c_str());
    std::printf("  rows:            %zu live (%zu buffered, %zu tombstones "
                "pending)\n",
                (*dyn)->live_rows(), (*dyn)->buffer_rows(),
                (*dyn)->num_tombstones());
    std::printf("  epoch:           %llu\n",
                static_cast<unsigned long long>((*dyn)->epoch()));
    std::printf("  resident:        %.1f KiB\n",
                static_cast<double>((*dyn)->ResidentBytes()) / 1024.0);
  }

  // --collection: one resident-memory line per registered method — every
  // method instantiated (and Prepare()d) over this collection, with the
  // chunk index / dynamic base wired in when the flags provide them.
  if (flags.Has("collection")) {
    auto collection =
        Collection::Load(Env::Posix(), flags.Get("collection", ""));
    if (!collection.ok()) return Fail(collection.status());
    MethodContext context;
    context.collection = &*collection;
    context.index = index.has_value() ? &**index : nullptr;
    context.env = Env::Posix();
    std::printf("resident memory by method (%zu rows):\n",
                collection->size());
    for (const MethodInfo& info : MethodRegistry::Global().List()) {
      std::string params;
      if (info.name == "dynamic") {
        if (!flags.Has("dyn")) {
          std::printf("  %-11s (skipped: needs --dyn)\n", info.name.c_str());
          continue;
        }
        params = "base=" + flags.Get("dyn", "");
      }
      auto method =
          MethodRegistry::Global().Create(info.name, context, params);
      const Status prepared =
          method.ok() ? (*method)->Prepare() : method.status();
      if (!prepared.ok()) {
        std::printf("  %-11s (skipped: %s)\n", info.name.c_str(),
                    prepared.ToString().c_str());
        continue;
      }
      std::printf("  %-11s %10.1f KiB — %s\n", info.name.c_str(),
                  static_cast<double>((*method)->ResidentBytes()) / 1024.0,
                  (*method)->Describe().c_str());
    }
  }
  return 0;
}

// Offline integrity check: runs every validation the open paths split
// between them — envelope + header geometry, the full-file CRC, per-entry
// invariants, and each chunk payload against its index sphere. --tree
// additionally checks a static SR-tree file (CRC + structural links).
// Defects print as "error: <what> in <path> at offset <n>"; exit 1.
int CmdFsck(const Flags& flags) {
  if (!flags.Has("index") && !flags.Has("tree") && !flags.Has("pq") &&
      !flags.Has("dyn")) {
    std::fprintf(stderr,
                 "fsck requires --index, --dyn, --tree, and/or --pq\n");
    return 2;
  }
  int failures = 0;
  if (flags.Has("dyn")) {
    // Manifest envelope + CRC + record invariants, then every shard
    // artifact (row counts, chunk-index deep validation for the chunked
    // method).
    const std::string base = flags.Get("dyn", "");
    const Status verdict = FsckDynamic(Env::Posix(), base);
    if (!verdict.ok()) {
      std::fprintf(stderr, "fsck: dyn %s: %s\n", base.c_str(),
                   verdict.ToString().c_str());
      ++failures;
    } else if (auto manifest = LoadDynamicManifest(Env::Posix(), base);
               !manifest.ok()) {
      std::fprintf(stderr, "fsck: dyn %s: %s\n", base.c_str(),
                   manifest.status().ToString().c_str());
      ++failures;
    } else {
      uint64_t shard_rows = 0;
      for (const ManifestShardRecord& shard : manifest->shards) {
        shard_rows += shard.rows;
      }
      std::printf("fsck: dyn %s: OK (%zu shards / %llu rows, %zu buffered, "
                  "%zu tombstones, method %s, format v%u)\n",
                  base.c_str(), manifest->shards.size(),
                  static_cast<unsigned long long>(shard_rows),
                  manifest->buffer_rows(), manifest->tombstones.size(),
                  manifest->method.c_str(), kDynamicFormatVersion);
    }
  }
  if (flags.Has("index")) {
    // The deserializing open already verifies envelope, CRC, and entry
    // invariants; Validate re-reads every chunk against its sphere.
    auto index = ChunkIndex::Open(
        Env::Posix(), ChunkIndexPaths::ForBase(flags.Get("index", "")),
        kDescriptorDim, IndexOpenMode::kDeserialize);
    Status verdict = index.ok() ? index->Validate(static_cast<uint32_t>(
                                      flags.GetInt("max-chunk-pop", 0)))
                                : index.status();
    if (!verdict.ok()) {
      std::fprintf(stderr, "fsck: index %s: %s\n",
                   flags.Get("index", "").c_str(),
                   verdict.ToString().c_str());
      ++failures;
    } else {
      std::printf("fsck: index %s: OK (%zu chunks, dim %zu, format v%u)\n",
                  flags.Get("index", "").c_str(), index->num_chunks(),
                  index->dim(), index->file_header().version);
    }
  }
  if (flags.Has("tree")) {
    auto tree =
        StaticSrTree::Open(Env::Posix(), flags.Get("tree", ""),
                           /*mapped=*/false);  // deserializing open = CRC +
                                               // structural validation
    if (!tree.ok()) {
      std::fprintf(stderr, "fsck: tree %s: %s\n", flags.Get("tree", "").c_str(),
                   tree.status().ToString().c_str());
      ++failures;
    } else {
      std::printf("fsck: tree %s: OK (%zu nodes, %zu leaves, %zu points, "
                  "format v%u)\n",
                  flags.Get("tree", "").c_str(), tree->num_nodes(),
                  tree->num_leaves(), tree->num_points(),
                  tree->header().version);
    }
  }
  if (flags.Has("pq")) {
    // The deserializing open verifies envelope geometry, the full-file CRC,
    // and per-entry invariants (finite codebooks, every code < ksub).
    auto pq = OpenPqFile(Env::Posix(), flags.Get("pq", ""), 0,
                         /*mapped=*/false);
    if (!pq.ok()) {
      std::fprintf(stderr, "fsck: pq %s: %s\n", flags.Get("pq", "").c_str(),
                   pq.status().ToString().c_str());
      ++failures;
    } else {
      std::printf("fsck: pq %s: OK (m=%zu x ksub=%zu, dim %zu, %llu rows, "
                  "format v%u)\n",
                  flags.Get("pq", "").c_str(), pq->m(), pq->ksub(), pq->dim(),
                  static_cast<unsigned long long>(pq->num_vectors()),
                  pq->header().version);
    }
  }
  return failures == 0 ? 0 : 1;
}

// Lists every method in the registry with its capability flags.
// --names 1 prints bare names only (one per line), for shell loops.
int CmdMethods(const Flags& flags) {
  const bool names_only = flags.GetInt("names", 0) != 0;
  for (const MethodInfo& info : MethodRegistry::Global().List()) {
    if (names_only) {
      std::printf("%s\n", info.name.c_str());
      continue;
    }
    const MethodCapabilities& caps = info.capabilities;
    std::printf("%-11s %s\n", info.name.c_str(), info.summary.c_str());
    std::printf("            capabilities: exact=%s range=%s stop-rules=%s "
                "disk-model=%s\n",
                caps.exact ? "yes" : "no", caps.range_search ? "yes" : "no",
                caps.stop_rules ? "yes" : "no",
                caps.disk_model ? "yes" : "no");
  }
  return 0;
}

// Prints the unified per-query (or summed) telemetry record.
void PrintTelemetry(const QueryTelemetry& t, const char* prefix) {
  std::printf("%sprobes %llu, index entries %llu, candidates %llu, "
              "descriptors %llu\n",
              prefix, static_cast<unsigned long long>(t.probes),
              static_cast<unsigned long long>(t.index_entries_scanned),
              static_cast<unsigned long long>(t.candidates_examined),
              static_cast<unsigned long long>(t.descriptors_scanned));
  std::printf("%sbytes read %llu, chunks read %llu, cache %llu hit / %llu "
              "miss\n",
              prefix, static_cast<unsigned long long>(t.bytes_read),
              static_cast<unsigned long long>(t.chunks_read),
              static_cast<unsigned long long>(t.cache_hits),
              static_cast<unsigned long long>(t.cache_misses));
}

int CmdSearch(const Flags& flags) {
  if (!flags.Has("collection") || !flags.Has("query-pos")) {
    std::fprintf(stderr, "search requires --collection and --query-pos\n");
    return 2;
  }
  auto collection = Collection::Load(Env::Posix(), flags.Get("collection", ""));
  if (!collection.ok()) return Fail(collection.status());

  std::optional<StatusOr<ChunkIndex>> index;
  if (flags.Has("index")) {
    index.emplace(ChunkIndex::Open(
        Env::Posix(), ChunkIndexPaths::ForBase(flags.Get("index", "")),
        kDescriptorDim, OpenModeFromFlags(flags)));
    if (!index->ok()) return Fail(index->status());
  }

  const size_t pos = static_cast<size_t>(flags.GetInt("query-pos", 0));
  if (pos >= collection->size()) {
    std::fprintf(stderr, "query-pos out of range (collection has %zu)\n",
                 collection->size());
    return 2;
  }
  const size_t k = static_cast<size_t>(flags.GetInt("k", 10));
  const int64_t max_chunks = flags.GetInt("max-chunks", 0);

  MethodContext context;
  context.collection = &*collection;
  context.index = index.has_value() ? &**index : nullptr;
  context.prefetch = PrefetchFromFlag(flags.GetInt("prefetch-depth", -1));
  context.env = Env::Posix();
  auto method = MethodRegistry::Global().Create(
      flags.Get("method", "chunked"), context, flags.Get("method-params", ""));
  if (!method.ok()) return Fail(method.status());
  if (const Status prepared = (*method)->Prepare(); !prepared.ok()) {
    return Fail(prepared);
  }
  std::printf("method: %s\n", (*method)->Describe().c_str());

  const StopRule stop = max_chunks > 0
                            ? StopRule::MaxChunks(
                                  static_cast<size_t>(max_chunks))
                            : StopRule::Exact();
  auto result = (*method)->Search(collection->Vector(pos), k, stop);
  if (!result.ok()) return Fail(result.status());

  const QueryTelemetry& t = result->telemetry;
  std::printf("%s search: %.1f ms wall, %.1f ms modeled "
              "(%.1f ms overlapped)\n",
              t.exact ? "exact" : "approximate", t.wall_micros / 1000.0,
              t.model_micros / 1000.0, t.model_overlapped_micros / 1000.0);
  PrintTelemetry(t, "");
  if (t.prefetch.issued > 0) {
    std::printf("prefetch: %llu issued, %llu used, %llu wasted, "
                "%llu cancelled\n",
                static_cast<unsigned long long>(t.prefetch.issued),
                static_cast<unsigned long long>(t.prefetch.used),
                static_cast<unsigned long long>(t.prefetch.wasted),
                static_cast<unsigned long long>(t.prefetch.cancelled));
  }
  for (const Neighbor& n : result->neighbors) {
    std::printf("  id %-10u dist %.4f\n", n.id, n.distance);
  }
  return 0;
}

// Runs a sampled query workload through the concurrent batch engine, via
// any registered --method (default: the paper's chunked searcher).
// Methods that support it run chunk-major by default (--shared-scan off or
// QVT_SHARED_SCAN=0 forces query-major); results are bit-identical either
// way, so figure-reproduction runs stay on the paper's methodology.
// --verify 1 re-runs the batch serially (query-major, prefetch off, fresh
// cache) and cross-checks neighbors per query — covering concurrency,
// prefetching, AND the shared-scan executor. --check-recall R scores the
// batch against exact-scan ground truth and fails below the threshold.
int CmdBatch(const Flags& flags) {
  const std::string method_name = flags.Get("method", "chunked");
  if (!flags.Has("collection")) {
    std::fprintf(stderr, "batch requires --collection\n");
    return 2;
  }
  if (method_name == "chunked" && !flags.Has("index")) {
    std::fprintf(stderr, "batch --method chunked requires --index\n");
    return 2;
  }
  auto collection = Collection::Load(Env::Posix(), flags.Get("collection", ""));
  if (!collection.ok()) return Fail(collection.status());
  std::optional<StatusOr<ChunkIndex>> index;
  if (flags.Has("index")) {
    index.emplace(ChunkIndex::Open(
        Env::Posix(), ChunkIndexPaths::ForBase(flags.Get("index", "")),
        kDescriptorDim, OpenModeFromFlags(flags)));
    if (!index->ok()) return Fail(index->status());
  }

  const size_t num_queries = std::min<size_t>(
      static_cast<size_t>(flags.GetInt("queries", 1000)), collection->size());
  const size_t k = static_cast<size_t>(flags.GetInt("k", 10));
  const size_t threads = static_cast<size_t>(flags.GetInt("threads", 1));
  const int64_t max_chunks = flags.GetInt("max-chunks", 0);
  const uint64_t cache_pages =
      static_cast<uint64_t>(flags.GetInt("cache-pages", 0));

  Rng rng(static_cast<uint64_t>(flags.GetInt("seed", 7)));
  const Workload workload = MakeDatasetQueries(*collection, num_queries, &rng);
  const StopRule stop = max_chunks > 0
                            ? StopRule::MaxChunks(
                                  static_cast<size_t>(max_chunks))
                            : StopRule::Exact();

  std::unique_ptr<ChunkCache> cache;
  if (cache_pages > 0) {
    cache = std::make_unique<ChunkCache>(cache_pages,
                                         std::max<size_t>(threads, 1));
  }
  PrefetcherOptions prefetch =
      PrefetchFromFlag(flags.GetInt("prefetch-depth", -1));
  // Enough read workers that one stalled query never starves the others.
  prefetch.io_threads = std::max<size_t>(2, threads);

  MethodContext context;
  context.collection = &*collection;
  context.index = index.has_value() ? &**index : nullptr;
  context.cache = cache.get();
  context.prefetch = prefetch;
  context.env = Env::Posix();
  const std::string method_params = flags.Get("method-params", "");
  auto method = MethodRegistry::Global().Create(method_name, context,
                                                method_params);
  if (!method.ok()) return Fail(method.status());
  if (const Status prepared = (*method)->Prepare(); !prepared.ok()) {
    return Fail(prepared);
  }
  std::printf("method: %s\n", (*method)->Describe().c_str());

  const std::string shared_flag = flags.Get("shared-scan", "on");
  if (shared_flag != "on" && shared_flag != "off") {
    std::fprintf(stderr, "--shared-scan must be on or off\n");
    return 2;
  }
  BatchSearcher batch_searcher(method->get(), threads,
                               /*shared_scan=*/shared_flag == "on");
  auto batch = batch_searcher.SearchAll(workload, k, stop);
  if (!batch.ok()) return Fail(batch.status());

  std::printf("batch: %zu queries, k=%zu, %zu thread(s)\n",
              workload.num_queries(), k, batch->num_threads);
  std::printf("wall:  %.3f s total, %.1f queries/s\n",
              batch->batch_wall_micros * 1e-6,
              batch->batch_wall_micros > 0
                  ? 1e6 * static_cast<double>(workload.num_queries()) /
                        static_cast<double>(batch->batch_wall_micros)
                  : 0.0);
  std::printf("per-query wall  (ms): mean %.2f  p50 %.2f  p95 %.2f  "
              "p99 %.2f  max %.2f\n",
              batch->wall.mean / 1000.0, batch->wall.p50 / 1000.0,
              batch->wall.p95 / 1000.0, batch->wall.p99 / 1000.0,
              batch->wall.max / 1000.0);
  std::printf("per-query model (ms): mean %.2f  p50 %.2f  p95 %.2f  "
              "p99 %.2f  max %.2f\n",
              batch->model.mean / 1000.0, batch->model.p50 / 1000.0,
              batch->model.p95 / 1000.0, batch->model.p99 / 1000.0,
              batch->model.max / 1000.0);
  std::printf("telemetry totals (%zu exact of %zu):\n", batch->exact_queries,
              workload.num_queries());
  PrintTelemetry(batch->totals, "  ");
  if (batch->totals.prefetch.issued > 0) {
    std::printf("prefetch: %llu issued, %llu used, %llu wasted, "
                "%llu cancelled\n",
                static_cast<unsigned long long>(batch->totals.prefetch.issued),
                static_cast<unsigned long long>(batch->totals.prefetch.used),
                static_cast<unsigned long long>(batch->totals.prefetch.wasted),
                static_cast<unsigned long long>(
                    batch->totals.prefetch.cancelled));
  }
  if (cache != nullptr) {
    const ChunkCacheStats stats = cache->Stats();
    std::printf("cache: %zu shard(s), hit rate %.1f%%, %llu evictions, "
                "%llu coalesced reads\n",
                cache->num_shards(), 100.0 * stats.HitRate(),
                static_cast<unsigned long long>(stats.evictions),
                static_cast<unsigned long long>(stats.single_flight_waits));
  }
  if (batch->shared.enabled) {
    const SharedScanStats& s = batch->shared;
    std::printf("shared scan: %llu distinct queries, %llu dedup hit(s)\n",
                static_cast<unsigned long long>(s.queries),
                static_cast<unsigned long long>(s.dedup_hits));
    std::printf("  chunk fetches: %llu for %llu attachments "
                "(%llu fetch+decodes coalesced, %.1f%% saved)\n",
                static_cast<unsigned long long>(s.chunk_fetches),
                static_cast<unsigned long long>(s.chunk_attachments),
                static_cast<unsigned long long>(s.chunks_coalesced()),
                s.chunk_attachments > 0
                    ? 100.0 * static_cast<double>(s.chunks_coalesced()) /
                          static_cast<double>(s.chunk_attachments)
                    : 0.0);
    std::printf("  rows: %llu fetched once, %llu co-scanned row passes\n",
                static_cast<unsigned long long>(s.rows_fetched),
                static_cast<unsigned long long>(s.rows_scan_shared));
    std::printf("  co-scan histogram (queries/chunk):");
    for (size_t b = 0; b < SharedScanStats::kHistogramBuckets; ++b) {
      if (s.coscan_histogram[b] == 0) continue;
      std::printf(" [%zu+]=%llu", static_cast<size_t>(1) << b,
                  static_cast<unsigned long long>(s.coscan_histogram[b]));
    }
    std::printf("\n");
  }

  if (flags.GetInt("verify", 0) != 0) {
    // A fresh method instance for the serial pass with a fresh cache, so
    // both runs start cold — and the prefetch pipeline off, so the chunked
    // reference is the plain synchronous searcher (this cross-check covers
    // concurrency AND prefetching).
    std::unique_ptr<ChunkCache> serial_cache;
    if (cache_pages > 0) {
      serial_cache = std::make_unique<ChunkCache>(cache_pages, 1);
    }
    MethodContext serial_context = context;
    serial_context.cache = serial_cache.get();
    serial_context.prefetch.depth = 0;
    auto serial_method = MethodRegistry::Global().Create(
        method_name, serial_context, method_params);
    if (!serial_method.ok()) return Fail(serial_method.status());
    if (const Status prepared = (*serial_method)->Prepare(); !prepared.ok()) {
      return Fail(prepared);
    }
    // Query-major, shared scans off: the reference is the plain per-query
    // loop, so --verify also covers the chunk-major executor.
    BatchSearcher serial(serial_method->get(), 1, /*shared_scan=*/false);
    auto reference = serial.SearchAll(workload, k, stop);
    if (!reference.ok()) return Fail(reference.status());
    size_t mismatches = 0;
    for (size_t q = 0; q < workload.num_queries(); ++q) {
      const MethodResult& a = batch->results[q];
      const MethodResult& b = reference->results[q];
      bool same =
          a.telemetry.chunks_read == b.telemetry.chunks_read &&
          a.neighbors.size() == b.neighbors.size();
      for (size_t i = 0; same && i < a.neighbors.size(); ++i) {
        same = a.neighbors[i].id == b.neighbors[i].id;
      }
      if (!same) ++mismatches;
    }
    std::printf("verify: %zu/%zu queries identical to serial run%s\n",
                workload.num_queries() - mismatches, workload.num_queries(),
                mismatches == 0 ? "" : "  <-- MISMATCH");
    const double speedup =
        batch->batch_wall_micros > 0
            ? static_cast<double>(reference->batch_wall_micros) /
                  static_cast<double>(batch->batch_wall_micros)
            : 0.0;
    std::printf("speedup vs serial: %.2fx\n", speedup);
    if (mismatches != 0) return 1;
  }

  if (flags.Has("check-recall")) {
    const double threshold = flags.GetDouble("check-recall", 0.0);
    const GroundTruth truth = GroundTruth::Compute(*collection, workload, k);
    double recall = 0.0;
    for (size_t q = 0; q < workload.num_queries(); ++q) {
      recall += PrecisionAtK(batch->results[q].neighbors, truth.TruthFor(q),
                             k);
    }
    if (workload.num_queries() > 0) {
      recall /= static_cast<double>(workload.num_queries());
    }
    const bool pass = recall >= threshold;
    std::printf("recall@%zu vs exact scan: %.4f (threshold %.4f) %s\n", k,
                recall, threshold, pass ? "PASS" : "FAIL");
    if (!pass) return 1;
  }
  return 0;
}

// Sweeps chunk budgets over an existing index and reports delivered recall
// vs the per-query latency distribution (p50/p95/p99, model and wall clock)
// — the quality-vs-p99 axis of the tail-latency experiment, for whatever
// index the user built (any --chunker, any --max-chunk-pop). --json writes
// the single-series BENCH_tail.json document; --max-chunk-pop declares the
// population bound recorded with the series (and checked against the
// index), it does not rebuild anything.
int CmdTail(const Flags& flags) {
  if (!flags.Has("collection") || !flags.Has("index")) {
    std::fprintf(stderr, "tail requires --collection and --index\n");
    return 2;
  }
  auto collection = Collection::Load(Env::Posix(), flags.Get("collection", ""));
  if (!collection.ok()) return Fail(collection.status());
  auto index = ChunkIndex::Open(
      Env::Posix(), ChunkIndexPaths::ForBase(flags.Get("index", "")),
      kDescriptorDim, OpenModeFromFlags(flags));
  if (!index.ok()) return Fail(index.status());

  const size_t num_queries = std::min<size_t>(
      static_cast<size_t>(flags.GetInt("queries", 200)), collection->size());
  const size_t k = static_cast<size_t>(flags.GetInt("k", 10));
  const size_t threads = static_cast<size_t>(flags.GetInt("threads", 1));
  const size_t max_chunk_pop =
      static_cast<size_t>(flags.GetInt("max-chunk-pop", 0));
  if (max_chunk_pop > 0) {
    if (const Status valid =
            index->Validate(static_cast<uint32_t>(max_chunk_pop));
        !valid.ok()) {
      return Fail(valid);
    }
  }

  std::vector<size_t> budgets;
  {
    std::stringstream list(flags.Get("budgets", "1,2,4,8,0"));
    std::string item;
    while (std::getline(list, item, ',')) {
      if (!item.empty()) {
        budgets.push_back(static_cast<size_t>(std::stoull(item)));
      }
    }
  }
  if (budgets.empty()) {
    std::fprintf(stderr, "--budgets needs at least one entry (0 = exact)\n");
    return 2;
  }

  Rng rng(static_cast<uint64_t>(flags.GetInt("seed", 7)));
  const Workload workload = MakeDatasetQueries(*collection, num_queries, &rng);
  const GroundTruth truth = GroundTruth::Compute(*collection, workload, k);

  MethodContext context;
  context.collection = &*collection;
  context.index = &*index;
  context.prefetch = PrefetchFromFlag(flags.GetInt("prefetch-depth", -1));
  context.env = Env::Posix();
  const std::string method_name = flags.Get("method", "chunked");
  auto method = MethodRegistry::Global().Create(method_name, context,
                                                flags.Get("method-params", ""));
  if (!method.ok()) return Fail(method.status());
  if (const Status prepared = (*method)->Prepare(); !prepared.ok()) {
    return Fail(prepared);
  }
  std::printf("method: %s\n", (*method)->Describe().c_str());

  auto points = RunTailSweep(**method, workload, &truth, k, budgets, threads);
  if (!points.ok()) return Fail(points.status());

  TailSeries series;
  series.label = flags.Get("label", method_name);
  series.populations = index->populations();
  series.population_bound = max_chunk_pop;
  series.points = std::move(points).value();

  PrintTailTable(std::cout, "quality vs tail latency", {series});
  if (flags.Has("json")) {
    const std::string path = flags.Get("json", "BENCH_tail.json");
    std::ofstream json(path);
    if (!json) {
      std::fprintf(stderr, "cannot write %s\n", path.c_str());
      return 1;
    }
    WriteTailJson(json, {series});
    std::printf("wrote %s\n", path.c_str());
  }
  return 0;
}

int Main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr,
                 "usage: qvt_tool <generate|build|info|fsck|tail|methods|"
                 "search|batch|ingest|delete|compact> [--flag value]...\n");
    return 2;
  }
  // The dynamic wrapper lives above the core library, so its registration
  // is explicit (the registry's built-ins self-register).
  if (const Status registered =
          RegisterDynamicMethod(MethodRegistry::Global());
      !registered.ok()) {
    return Fail(registered);
  }
  const std::string command = argv[1];
  const Flags flags(argc, argv, 2);
  if (command == "generate") return CmdGenerate(flags);
  if (command == "build") return CmdBuild(flags);
  if (command == "info") return CmdInfo(flags);
  if (command == "fsck") return CmdFsck(flags);
  if (command == "tail") return CmdTail(flags);
  if (command == "methods") return CmdMethods(flags);
  if (command == "search") return CmdSearch(flags);
  if (command == "batch") return CmdBatch(flags);
  if (command == "ingest") return CmdIngest(flags);
  if (command == "delete") return CmdDeleteRows(flags);
  if (command == "compact") return CmdCompact(flags);
  std::fprintf(stderr, "unknown command '%s'\n", command.c_str());
  return 2;
}

}  // namespace
}  // namespace qvt

int main(int argc, char** argv) { return qvt::Main(argc, argv); }
