#include "bench_util/index_suite.h"

#include <unistd.h>

#include <filesystem>

#include <gtest/gtest.h>

#include "bench_util/runner.h"
#include "core/search_method.h"
#include "storage/disk_cost_model.h"
#include "util/logging.h"

namespace qvt {
namespace {

/// Shares one tiny suite across tests (building it is the expensive part).
class IndexSuiteTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    config_ = new ExperimentConfig(ExperimentConfig::Tiny());
    // Per-process dir: with gtest_discover_tests every test runs in its own
    // process, so a shared dir would let one process's setup/teardown
    // remove_all the cache out from under another mid-build.
    config_->cache_dir = "/tmp/qvt_cache_test_" + std::to_string(::getpid());
    std::filesystem::remove_all(config_->cache_dir);
    auto suite = IndexSuite::BuildOrLoad(*config_, Env::Posix());
    QVT_CHECK_OK(suite.status()) << "suite build failed";
    suite_ = suite->release();
  }

  static void TearDownTestSuite() {
    delete suite_;
    std::filesystem::remove_all(config_->cache_dir);
    delete config_;
  }

  static ExperimentConfig* config_;
  static IndexSuite* suite_;
};

ExperimentConfig* IndexSuiteTest::config_ = nullptr;
IndexSuite* IndexSuiteTest::suite_ = nullptr;

TEST_F(IndexSuiteTest, AllSixVariantsExist) {
  for (Strategy strategy : kAllStrategies) {
    for (SizeClass size_class : kAllSizeClasses) {
      const IndexVariant& v = suite_->variant(strategy, size_class);
      EXPECT_GT(v.index.num_chunks(), 0u) << v.Label();
      EXPECT_GT(v.retained, 0u) << v.Label();
      EXPECT_EQ(v.index.total_descriptors(), v.retained) << v.Label();
    }
  }
}

TEST_F(IndexSuiteTest, BagAndSrShareRetainedSets) {
  for (SizeClass size_class : kAllSizeClasses) {
    const IndexVariant& bag = suite_->variant(Strategy::kBag, size_class);
    const IndexVariant& sr = suite_->variant(Strategy::kSrTree, size_class);
    EXPECT_EQ(bag.retained, sr.retained);
    EXPECT_EQ(bag.discarded, sr.discarded);
    EXPECT_EQ(bag.retained + bag.discarded, suite_->collection().size());
    EXPECT_EQ(suite_->retained(size_class).size(), bag.retained);
  }
}

TEST_F(IndexSuiteTest, ChunkSizesOrderedAcrossClasses) {
  const auto avg = [&](SizeClass size_class) {
    const IndexVariant& v = suite_->variant(Strategy::kBag, size_class);
    return static_cast<double>(v.index.total_descriptors()) /
           static_cast<double>(v.index.num_chunks());
  };
  EXPECT_LE(avg(SizeClass::kSmall), avg(SizeClass::kMedium));
  EXPECT_LE(avg(SizeClass::kMedium), avg(SizeClass::kLarge));
}

TEST_F(IndexSuiteTest, SrChunksAreUniform) {
  for (SizeClass size_class : kAllSizeClasses) {
    const IndexVariant& sr = suite_->variant(Strategy::kSrTree, size_class);
    uint32_t min = UINT32_MAX, max = 0;
    for (const ChunkLocation& loc : sr.index.locations()) {
      min = std::min(min, loc.num_descriptors);
      max = std::max(max, loc.num_descriptors);
    }
    EXPECT_LE(max, 2u * std::max(1u, min)) << sr.Label();
  }
}

TEST_F(IndexSuiteTest, WorkloadsMatchConfig) {
  EXPECT_EQ(suite_->dq().num_queries(), config_->queries_per_workload);
  EXPECT_EQ(suite_->sq().num_queries(), config_->queries_per_workload);
  EXPECT_EQ(suite_->dq().name, "DQ");
  EXPECT_EQ(suite_->sq().name, "SQ");
}

TEST_F(IndexSuiteTest, TruthsAvailableForAllClassesAndWorkloads) {
  for (SizeClass size_class : kAllSizeClasses) {
    for (const char* workload : {"DQ", "SQ"}) {
      const GroundTruth& truth = suite_->truth(size_class, workload);
      EXPECT_EQ(truth.k(), config_->k);
      EXPECT_EQ(truth.num_queries(), config_->queries_per_workload);
    }
  }
}

TEST_F(IndexSuiteTest, CacheReloadsIdentically) {
  auto reloaded = IndexSuite::BuildOrLoad(*config_, Env::Posix());
  ASSERT_TRUE(reloaded.ok());
  for (Strategy strategy : kAllStrategies) {
    for (SizeClass size_class : kAllSizeClasses) {
      const IndexVariant& a = suite_->variant(strategy, size_class);
      const IndexVariant& b = (*reloaded)->variant(strategy, size_class);
      EXPECT_EQ(a.index.num_chunks(), b.index.num_chunks());
      EXPECT_EQ(a.retained, b.retained);
      EXPECT_EQ(a.discarded, b.discarded);
    }
  }
}

TEST_F(IndexSuiteTest, SrSweepIndexBuilds) {
  auto index = suite_->SrIndexWithLeafSize(64);
  ASSERT_TRUE(index.ok());
  EXPECT_EQ(index->total_descriptors(),
            suite_->retained(SizeClass::kSmall).size());
  // Cached re-open gives the same index.
  auto again = suite_->SrIndexWithLeafSize(64);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again->num_chunks(), index->num_chunks());
}

TEST_F(IndexSuiteTest, RunWorkloadProducesSaneCurves) {
  const IndexVariant& v = suite_->variant(Strategy::kSrTree, SizeClass::kSmall);
  Searcher searcher(&v.index, DiskCostModel(config_->cost_model));
  auto curves = RunWorkload(searcher, suite_->dq(),
                            suite_->truth(SizeClass::kSmall, "DQ"),
                            config_->k);
  ASSERT_TRUE(curves.ok());

  // Exact completion: every query finds all k true neighbors; final
  // precision is 1.
  EXPECT_DOUBLE_EQ(curves->mean_final_precision, 1.0);
  EXPECT_EQ(curves->queries_reaching.back(), config_->queries_per_workload);

  // Effort curves are monotone nondecreasing in n.
  for (size_t n = 1; n < config_->k; ++n) {
    EXPECT_GE(curves->mean_chunks_at[n], curves->mean_chunks_at[n - 1]);
    EXPECT_GE(curves->mean_model_seconds_at[n],
              curves->mean_model_seconds_at[n - 1]);
  }
  EXPECT_GT(curves->mean_completion_model_seconds,
            curves->mean_model_seconds_at.back() - 1e-9);
  EXPECT_GE(curves->mean_chunks_to_completion, curves->mean_chunks_at.back());
}

TEST_F(IndexSuiteTest, ApproximateStopLowersPrecision) {
  const IndexVariant& v = suite_->variant(Strategy::kSrTree, SizeClass::kSmall);
  Searcher searcher(&v.index, DiskCostModel(config_->cost_model));
  auto exact = RunWorkload(searcher, suite_->sq(),
                           suite_->truth(SizeClass::kSmall, "SQ"),
                           config_->k, StopRule::Exact());
  auto approx = RunWorkload(searcher, suite_->sq(),
                            suite_->truth(SizeClass::kSmall, "SQ"),
                            config_->k, StopRule::MaxChunks(1));
  ASSERT_TRUE(exact.ok());
  ASSERT_TRUE(approx.ok());
  EXPECT_DOUBLE_EQ(exact->mean_final_precision, 1.0);
  EXPECT_LT(approx->mean_final_precision, 1.0);
  EXPECT_GT(approx->mean_final_precision, 0.0);
  EXPECT_LT(approx->mean_completion_model_seconds,
            exact->mean_completion_model_seconds);
}

TEST_F(IndexSuiteTest, RunTailSweepProducesOrderedPoints) {
  const IndexVariant& v = suite_->variant(Strategy::kSrTree, SizeClass::kSmall);
  const Searcher searcher(&v.index, DiskCostModel(config_->cost_model));
  const auto method = WrapSearcher(&searcher);
  ASSERT_TRUE(method->Prepare().ok());

  const std::vector<size_t> budgets{1, 2, 0};
  auto points = RunTailSweep(*method, suite_->dq(),
                             &suite_->truth(SizeClass::kSmall, "DQ"),
                             config_->k, budgets, /*num_threads=*/1);
  ASSERT_TRUE(points.ok());
  ASSERT_EQ(points->size(), budgets.size());

  // Points come back in budget order; recall rises with the budget and the
  // exact anchor (budget 0) delivers recall 1.
  for (size_t i = 0; i < budgets.size(); ++i) {
    EXPECT_EQ((*points)[i].max_chunks, budgets[i]);
    EXPECT_EQ((*points)[i].report.num_queries, suite_->dq().num_queries());
    EXPECT_GT((*points)[i].report.max_probe_rows, 0u);
  }
  EXPECT_LE((*points)[0].report.mean_final_precision,
            (*points)[1].report.mean_final_precision + 1e-9);
  EXPECT_DOUBLE_EQ(points->back().report.mean_final_precision, 1.0);
  // Latency percentiles are ordered within every report.
  for (const TailPoint& point : *points) {
    EXPECT_LE(point.report.model.p50, point.report.model.p95);
    EXPECT_LE(point.report.model.p95, point.report.model.p99);
    EXPECT_GE(point.report.model.TailRatio(), 1.0);
  }
}

TEST_F(IndexSuiteTest, RunTailSweepRejectsEmptyBudgets) {
  const IndexVariant& v = suite_->variant(Strategy::kSrTree, SizeClass::kSmall);
  const Searcher searcher(&v.index, DiskCostModel(config_->cost_model));
  const auto method = WrapSearcher(&searcher);
  ASSERT_TRUE(method->Prepare().ok());
  EXPECT_TRUE(RunTailSweep(*method, suite_->dq(),
                           &suite_->truth(SizeClass::kSmall, "DQ"),
                           config_->k, {}, 1)
                  .status()
                  .IsInvalidArgument());
}

TEST(ExperimentConfigTest, FingerprintChangesWithConfig) {
  ExperimentConfig a = ExperimentConfig::Tiny();
  ExperimentConfig b = ExperimentConfig::Tiny();
  EXPECT_EQ(a.Fingerprint(), b.Fingerprint());
  b.generator.seed += 1;
  EXPECT_NE(a.Fingerprint(), b.Fingerprint());
  b = a;
  b.k = 10;
  EXPECT_NE(a.Fingerprint(), b.Fingerprint());
}

TEST(ExperimentConfigTest, BagTargetFormula) {
  ExperimentConfig config = ExperimentConfig::Tiny();
  const size_t n = 10000;
  const size_t target = config.BagTargetForChunkSize(n, 100);
  // ~0.88*10000/100 + 0.12*10000/150 = 88 + 8 = 96.
  EXPECT_GT(target, 80u);
  EXPECT_LT(target, 110u);
  EXPECT_EQ(config.BagTargetForChunkSize(10, 1000000), 1u);
}

}  // namespace
}  // namespace qvt
