// End-to-end tests of the DynamicIndex wrapper: tombstone semantics,
// static-vs-dynamic equivalence for every registered method, epoch handoff
// under concurrent readers, shared-scan parity, and the registry wrapper.
#include "dynamic/dynamic_index.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <map>
#include <memory>
#include <thread>
#include <vector>

#include "core/batch_searcher.h"
#include "descriptor/generator.h"
#include "descriptor/workload.h"
#include "util/logging.h"
#include "util/parallel_for.h"

namespace qvt {
namespace {

Collection SmallCollection(size_t n, uint64_t seed = 21) {
  GeneratorConfig config;
  config.num_images = n / 10 + 1;
  config.descriptors_per_image = 10;
  config.num_modes = 5;
  config.seed = seed;
  Collection generated = GenerateCollection(config);
  QVT_CHECK(generated.size() >= n);
  Collection out;
  for (size_t i = 0; i < n; ++i) {
    // Re-key to dense ids so the test controls the id space.
    out.Append(static_cast<DescriptorId>(i), generated.Vector(i),
               generated.Image(i));
  }
  return out;
}

std::vector<std::vector<float>> SmallQueries(const Collection& data,
                                             size_t count) {
  std::vector<std::vector<float>> queries;
  for (size_t i = 0; i < count; ++i) {
    const auto v = data.Vector((i * 37) % data.size());
    std::vector<float> q(v.begin(), v.end());
    q[0] += 0.25f * static_cast<float>(i % 3);  // off-grid but nearby
    queries.push_back(std::move(q));
  }
  return queries;
}

DynamicOptions SmallOptions(const std::string& method,
                            const std::string& params = "",
                            size_t buffer = 60, size_t scale = 3,
                            MergePolicy policy = MergePolicy::kTiering) {
  DynamicOptions options;
  options.method = method;
  options.method_params = params;
  options.extension.buffer_capacity = buffer;
  options.extension.scale_factor = scale;
  options.extension.policy = policy;
  options.target_chunk_size = 25;
  return options;
}

/// Brute-force k-NN over a live-row map, with the (distance, id) tie-break.
std::vector<Neighbor> BruteForce(
    const std::map<DescriptorId, std::vector<float>>& live,
    std::span<const float> query, size_t k) {
  KnnResultSet set(k);
  for (const auto& [id, values] : live) {
    double sq = 0;
    for (size_t d = 0; d < query.size(); ++d) {
      // Widen before subtracting — the kernels' rounding contract.
      const double diff = static_cast<double>(values[d]) -
                          static_cast<double>(query[d]);
      sq += diff * diff;
    }
    set.Insert(id, std::sqrt(sq));
  }
  return set.Sorted();
}

void ExpectSameNeighbors(const std::vector<Neighbor>& got,
                         const std::vector<Neighbor>& want,
                         const std::string& label) {
  ASSERT_EQ(got.size(), want.size()) << label;
  for (size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].id, want[i].id) << label << " rank " << i;
    EXPECT_DOUBLE_EQ(got[i].distance, want[i].distance)
        << label << " rank " << i;
  }
}

TEST(DynamicIndexTest, InsertDeleteLifecycleAndErrors) {
  MemEnv env;
  Collection data = SmallCollection(50);
  auto created = DynamicIndex::Create(&env, "dyn", SmallOptions("exact-scan"));
  ASSERT_TRUE(created.ok()) << created.status().ToString();
  DynamicIndex& index = **created;

  for (size_t i = 0; i < 10; ++i) {
    ASSERT_TRUE(index.Insert(data.Id(i), data.Vector(i)).ok());
  }
  EXPECT_EQ(index.live_rows(), 10u);

  // Duplicate insert of a live id is rejected.
  EXPECT_TRUE(index.Insert(data.Id(3), data.Vector(3)).IsAlreadyExists());
  // Deleting a never-inserted id is NotFound.
  EXPECT_TRUE(index.Delete(999).IsNotFound());

  ASSERT_TRUE(index.Delete(data.Id(3)).ok());
  EXPECT_EQ(index.live_rows(), 9u);
  EXPECT_EQ(index.num_tombstones(), 1u);
  // Double delete is NotFound.
  EXPECT_TRUE(index.Delete(data.Id(3)).IsNotFound());

  // Delete-then-reinsert: the id becomes live again with the new vector.
  ASSERT_TRUE(index.Insert(data.Id(3), data.Vector(20)).ok());
  EXPECT_EQ(index.live_rows(), 10u);
  auto result = index.Search(data.Vector(20), 1, StopRule::Exact());
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->neighbors.size(), 1u);
  EXPECT_EQ(result->neighbors[0].id, data.Id(3));
  EXPECT_DOUBLE_EQ(result->neighbors[0].distance, 0.0);

  // Dimension mismatches fail loudly.
  std::vector<float> short_vec(3, 0.0f);
  EXPECT_TRUE(index.Insert(777, short_vec).IsInvalidArgument());
  EXPECT_TRUE(index.Search(short_vec, 1, StopRule::Exact())
                  .status()
                  .IsInvalidArgument());
}

TEST(DynamicIndexTest, CreateRejectsBadConfigurations) {
  MemEnv env;
  EXPECT_TRUE(DynamicIndex::Create(&env, "dyn", SmallOptions("no-such-method"))
                  .status()
                  .IsNotFound());
  EXPECT_TRUE(DynamicIndex::Create(&env, "dyn", SmallOptions("dynamic"))
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(DynamicIndex::Create(&env, "", SmallOptions("exact-scan"))
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(
      DynamicIndex::Create(nullptr, "dyn", SmallOptions("exact-scan"))
          .status()
          .IsInvalidArgument());
  EXPECT_TRUE(DynamicIndex::Open(&env, "missing").status().IsNotFound());
}

// A deleted row that already sits in a shard must stay filtered across
// every merge boundary: the k-NN answer is identical before a flush, after
// the flush, after cascaded merges, and after full compaction.
TEST(DynamicIndexTest, TombstoneFilteringAcrossMergeBoundaries) {
  MemEnv env;
  Collection data = SmallCollection(300);
  auto created = DynamicIndex::Create(
      &env, "dyn", SmallOptions("exact-scan", "", /*buffer=*/40));
  ASSERT_TRUE(created.ok());
  DynamicIndex& index = **created;

  std::map<DescriptorId, std::vector<float>> live;
  for (size_t i = 0; i < data.size(); ++i) {
    ASSERT_TRUE(index.Insert(data.Id(i), data.Vector(i)).ok());
    live[data.Id(i)] = {data.Vector(i).begin(), data.Vector(i).end()};
  }
  ASSERT_GT(index.num_shards(), 1u);

  // Delete rows that live in shards (anything outside the current buffer).
  for (DescriptorId id = 0; id < 120; id += 5) {
    ASSERT_TRUE(index.Delete(id).ok());
    live.erase(id);
  }
  ASSERT_GT(index.num_tombstones(), 0u);

  const auto queries = SmallQueries(data, 8);
  const size_t k = 10;
  std::vector<std::vector<Neighbor>> before;
  for (const auto& q : queries) {
    auto result = index.Search(q, k, StopRule::Exact());
    ASSERT_TRUE(result.ok());
    EXPECT_TRUE(result->telemetry.exact);
    ExpectSameNeighbors(result->neighbors, BruteForce(live, q, k),
                        "pre-flush vs brute force");
    before.push_back(result->neighbors);
  }

  // Flush pushes the tombstones' work through a merge cascade...
  ASSERT_TRUE(index.Flush().ok());
  for (size_t i = 0; i < queries.size(); ++i) {
    auto result = index.Search(queries[i], k, StopRule::Exact());
    ASSERT_TRUE(result.ok());
    ExpectSameNeighbors(result->neighbors, before[i], "post-flush");
  }

  // ...and compaction purges them entirely. Answers stay bit-identical.
  ASSERT_TRUE(index.Compact().ok());
  EXPECT_EQ(index.num_tombstones(), 0u);
  EXPECT_EQ(index.num_shards(), 1u);
  for (size_t i = 0; i < queries.size(); ++i) {
    auto result = index.Search(queries[i], k, StopRule::Exact());
    ASSERT_TRUE(result.ok());
    ExpectSameNeighbors(result->neighbors, before[i], "post-compaction");
  }
}

struct MethodCase {
  const char* method;
  const char* params;
};

// The acceptance bar of this PR: for EVERY registered method, a statically
// built index over collection C answers bit-identically to a dynamic index
// that reached C through an insert stream with interleaved deletes and a
// final compaction — at any build-thread count.
TEST(DynamicIndexTest, CompactedStreamEqualsStaticBuildForEveryMethod) {
  const MethodCase cases[] = {
      {"exact-scan", ""},
      {"chunked", ""},
      {"lsh", ""},
      {"va-file", ""},
      {"medrank", ""},
      {"psphere", "num_spheres=8"},
      {"pq", "m=4,ksub=16,rerank=32"},
  };
  Collection data = SmallCollection(300);
  const auto queries = SmallQueries(data, 6);
  const size_t k = 10;

  struct BuildThreadsGuard {
    ~BuildThreadsGuard() { SetBuildThreads(0); }
  } guard;

  for (const int threads : {1, 3}) {
    SetBuildThreads(threads);
    for (const MethodCase& c : cases) {
      const std::string label =
          std::string(c.method) + " @" + std::to_string(threads) + " threads";
      MemEnv env;
      auto created = DynamicIndex::Create(
          &env, "dyn", SmallOptions(c.method, c.params, /*buffer=*/60));
      ASSERT_TRUE(created.ok()) << label << ": " << created.status().ToString();
      DynamicIndex& index = **created;

      // The surviving stream, in insertion order (delete + re-insert moves
      // a row to the end — its new sequence position).
      std::vector<DescriptorId> stream;
      for (size_t i = 0; i < data.size(); ++i) {
        const DescriptorId id = data.Id(i);
        ASSERT_TRUE(index.Insert(id, data.Vector(i)).ok()) << label;
        stream.push_back(id);
        if (i % 7 == 3 && i >= 10) {
          // Delete a row inserted a while ago (usually already in a shard).
          const DescriptorId victim = data.Id(i - 10);
          ASSERT_TRUE(index.Delete(victim).ok()) << label;
          stream.erase(std::find(stream.begin(), stream.end(), victim));
          if (i % 14 == 3) {  // re-insert half of the victims at the tail
            ASSERT_TRUE(index.Insert(victim, data.Vector(i - 10)).ok())
                << label;
            stream.push_back(victim);
          }
        }
      }
      ASSERT_TRUE(index.Compact().ok()) << label;
      ASSERT_EQ(index.num_tombstones(), 0u) << label;
      ASSERT_EQ(index.live_rows(), stream.size()) << label;

      // Static reference: the same survivors in the same order, built
      // through the same shard entry point.
      Collection reference(data.dim());
      std::map<DescriptorId, size_t> position;
      for (size_t i = 0; i < data.size(); ++i) position[data.Id(i)] = i;
      for (const DescriptorId id : stream) {
        reference.Append(id, data.Vector(position[id]),
                         data.Image(position[id]));
      }
      ShardBuildContext context;
      context.data = std::make_shared<Collection>(std::move(reference));
      context.env = &env;
      context.artifact_base = "static-ref";
      context.target_chunk_size = 25;
      auto built = MethodRegistry::Global().BuildShard(c.method, context,
                                                       c.params);
      ASSERT_TRUE(built.ok()) << label << ": " << built.status().ToString();

      for (size_t qi = 0; qi < queries.size(); ++qi) {
        auto dynamic_result = index.Search(queries[qi], k, StopRule::Exact());
        auto static_result =
            built->method->Search(queries[qi], k, StopRule::Exact());
        ASSERT_TRUE(dynamic_result.ok()) << label;
        ASSERT_TRUE(static_result.ok()) << label;
        ExpectSameNeighbors(dynamic_result->neighbors,
                            static_result->neighbors,
                            label + " query " + std::to_string(qi));
        EXPECT_EQ(dynamic_result->telemetry.exact,
                  static_result->telemetry.exact)
            << label;
      }
    }
  }
}

// Exact-capable methods must stay exact mid-stream too — buffer + shards +
// tombstones at arbitrary points, checked against brute force.
TEST(DynamicIndexTest, MidStreamExactnessForExactMethods) {
  Collection data = SmallCollection(260);
  const auto queries = SmallQueries(data, 4);
  const size_t k = 8;
  for (const char* method : {"exact-scan", "chunked"}) {
    MemEnv env;
    auto created = DynamicIndex::Create(
        &env, "dyn", SmallOptions(method, "", /*buffer=*/50));
    ASSERT_TRUE(created.ok());
    DynamicIndex& index = **created;
    std::map<DescriptorId, std::vector<float>> live;
    for (size_t i = 0; i < data.size(); ++i) {
      ASSERT_TRUE(index.Insert(data.Id(i), data.Vector(i)).ok());
      live[data.Id(i)] = {data.Vector(i).begin(), data.Vector(i).end()};
      if (i % 9 == 5 && i >= 20) {
        const DescriptorId victim = data.Id(i - 17);
        ASSERT_TRUE(index.Delete(victim).ok());
        live.erase(victim);
      }
      if (i % 40 == 39) {
        for (const auto& q : queries) {
          auto result = index.Search(q, k, StopRule::Exact());
          ASSERT_TRUE(result.ok());
          EXPECT_TRUE(result->telemetry.exact) << method << " at row " << i;
          ExpectSameNeighbors(result->neighbors, BruteForce(live, q, k),
                              std::string(method) + " at row " +
                                  std::to_string(i));
        }
      }
    }
  }
}

TEST(DynamicIndexTest, AttributionAccountsForEveryNeighbor) {
  MemEnv env;
  Collection data = SmallCollection(200);
  auto created = DynamicIndex::Create(
      &env, "dyn", SmallOptions("chunked", "", /*buffer=*/60));
  ASSERT_TRUE(created.ok());
  DynamicIndex& index = **created;
  for (size_t i = 0; i < data.size(); ++i) {
    ASSERT_TRUE(index.Insert(data.Id(i), data.Vector(i)).ok());
  }
  ASSERT_GT(index.num_shards(), 0u);
  ASSERT_GT(index.buffer_rows(), 0u);
  for (DescriptorId id = 0; id < 40; id += 4) {
    ASSERT_TRUE(index.Delete(id).ok());
  }

  const auto queries = SmallQueries(data, 5);
  const size_t k = 12;
  for (const auto& q : queries) {
    auto result = index.Search(q, k, StopRule::Exact());
    ASSERT_TRUE(result.ok());
    // One attribution row per searched structure (buffer + each shard).
    EXPECT_EQ(result->shards.size(), index.num_shards() + 1);
    EXPECT_EQ(result->telemetry.shards_searched, result->shards.size());
    uint64_t contributed = 0;
    uint64_t rows = 0;
    bool saw_buffer = false;
    for (const ShardAttribution& attribution : result->shards) {
      contributed += attribution.neighbors_contributed;
      rows += attribution.rows;
      saw_buffer |= attribution.shard_id == ShardAttribution::kMutableBuffer;
    }
    EXPECT_TRUE(saw_buffer);
    // Every returned neighbor is attributed to exactly one structure, and
    // the structures together cover every physical row (deletes are
    // tombstones — no physical purge has happened yet).
    EXPECT_EQ(contributed, result->neighbors.size());
    EXPECT_EQ(rows, data.size());
    EXPECT_GT(result->telemetry.tombstones_filtered, 0u);
  }
}

TEST(DynamicIndexTest, SearchSharedMatchesPerQuerySearch) {
  Collection data = SmallCollection(240);
  const auto query_vectors = SmallQueries(data, 7);
  const size_t k = 9;
  // chunked exercises the wrapped shared-scan executor; lsh the per-query
  // fallback inside SearchShared.
  for (const char* method : {"chunked", "lsh"}) {
    MemEnv env;
    auto created = DynamicIndex::Create(
        &env, "dyn", SmallOptions(method, "", /*buffer=*/50));
    ASSERT_TRUE(created.ok());
    DynamicIndex& index = **created;
    for (size_t i = 0; i < data.size(); ++i) {
      ASSERT_TRUE(index.Insert(data.Id(i), data.Vector(i)).ok());
    }
    for (DescriptorId id = 5; id < 80; id += 9) {
      ASSERT_TRUE(index.Delete(id).ok());
    }
    EXPECT_TRUE(index.SupportsSharedScan());

    std::vector<std::span<const float>> spans;
    for (const auto& q : query_vectors) spans.emplace_back(q);
    SharedScanStats stats;
    auto shared = index.SearchShared(spans, k, StopRule::Exact(),
                                     /*num_threads=*/1, &stats);
    ASSERT_TRUE(shared.ok()) << method << ": " << shared.status().ToString();
    ASSERT_EQ(shared->size(), query_vectors.size());
    for (size_t qi = 0; qi < query_vectors.size(); ++qi) {
      auto single = index.Search(query_vectors[qi], k, StopRule::Exact());
      ASSERT_TRUE(single.ok());
      ExpectSameNeighbors((*shared)[qi].neighbors, single->neighbors,
                          std::string(method) + " query " +
                              std::to_string(qi));
      EXPECT_EQ((*shared)[qi].telemetry.exact, single->telemetry.exact);
    }
  }
}

TEST(DynamicIndexTest, BatchSearcherDrivesTheDynamicIndex) {
  MemEnv env;
  Collection data = SmallCollection(200);
  auto created = DynamicIndex::Create(
      &env, "dyn", SmallOptions("chunked", "", /*buffer=*/60));
  ASSERT_TRUE(created.ok());
  DynamicIndex& index = **created;
  for (size_t i = 0; i < data.size(); ++i) {
    ASSERT_TRUE(index.Insert(data.Id(i), data.Vector(i)).ok());
  }
  for (DescriptorId id = 2; id < 50; id += 11) {
    ASSERT_TRUE(index.Delete(id).ok());
  }

  Workload workload;
  workload.name = "dyn-test";
  workload.dim = data.dim();
  const auto query_vectors = SmallQueries(data, 6);
  for (const auto& q : query_vectors) {
    workload.queries.insert(workload.queries.end(), q.begin(), q.end());
  }

  const size_t k = 7;
  BatchSearcher searcher(&index, /*num_threads=*/2);
  auto batch = searcher.SearchAll(workload, k, StopRule::Exact());
  ASSERT_TRUE(batch.ok()) << batch.status().ToString();
  ASSERT_EQ(batch->results.size(), query_vectors.size());
  for (size_t qi = 0; qi < query_vectors.size(); ++qi) {
    auto single = index.Search(query_vectors[qi], k, StopRule::Exact());
    ASSERT_TRUE(single.ok());
    ExpectSameNeighbors(batch->results[qi].neighbors, single->neighbors,
                        "batch query " + std::to_string(qi));
  }
  EXPECT_EQ(batch->exact_queries, query_vectors.size());
}

// Readers hammer Search while a writer inserts, deletes, and flushes.
// Correctness bar: every query sees a coherent snapshot (k results, sorted,
// no dead id that was deleted before the reader started). TSan (CI) proves
// the epoch handoff is race-free.
TEST(DynamicIndexTest, ConcurrentInsertDeleteQueryHammer) {
  MemEnv env;
  Collection data = SmallCollection(400);
  auto created = DynamicIndex::Create(
      &env, "dyn", SmallOptions("exact-scan", "", /*buffer=*/32));
  ASSERT_TRUE(created.ok());
  DynamicIndex& index = **created;

  // Seed rows deleted before any reader starts: they must never surface.
  for (size_t i = 0; i < 50; ++i) {
    ASSERT_TRUE(index.Insert(data.Id(i), data.Vector(i)).ok());
  }
  for (DescriptorId id = 0; id < 50; id += 2) {
    ASSERT_TRUE(index.Delete(id).ok());
  }

  std::atomic<bool> stop{false};
  std::atomic<int> failures{0};
  std::vector<std::thread> readers;
  for (int t = 0; t < 3; ++t) {
    readers.emplace_back([&, t] {
      size_t qi = static_cast<size_t>(t);
      while (!stop.load(std::memory_order_relaxed)) {
        const auto query = data.Vector(qi % data.size());
        qi += 7;
        auto result = index.Search(query, 5, StopRule::Exact());
        if (!result.ok()) {
          ++failures;
          continue;
        }
        for (const Neighbor& neighbor : result->neighbors) {
          // Ids deleted before the hammer started stay deleted forever.
          if (neighbor.id < 50 && neighbor.id % 2 == 0) ++failures;
        }
        for (size_t i = 1; i < result->neighbors.size(); ++i) {
          if (result->neighbors[i].distance <
              result->neighbors[i - 1].distance) {
            ++failures;
          }
        }
      }
    });
  }

  for (size_t i = 50; i < data.size(); ++i) {
    ASSERT_TRUE(index.Insert(data.Id(i), data.Vector(i)).ok());
    if (i % 13 == 5) {
      ASSERT_TRUE(index.Delete(data.Id(i - 3)).ok());
    }
    if (i % 60 == 59) {
      ASSERT_TRUE(index.Flush().ok());
    }
  }
  ASSERT_TRUE(index.Compact().ok());
  stop.store(true, std::memory_order_relaxed);
  for (auto& reader : readers) reader.join();
  EXPECT_EQ(failures.load(), 0);
}

TEST(DynamicIndexTest, ResidentBytesTracksStructures) {
  MemEnv env;
  Collection data = SmallCollection(150);
  auto created = DynamicIndex::Create(
      &env, "dyn", SmallOptions("chunked", "", /*buffer=*/40));
  ASSERT_TRUE(created.ok());
  DynamicIndex& index = **created;
  const size_t empty_bytes = index.ResidentBytes();
  EXPECT_GT(empty_bytes, 0u);  // the preallocated buffer
  for (size_t i = 0; i < data.size(); ++i) {
    ASSERT_TRUE(index.Insert(data.Id(i), data.Vector(i)).ok());
  }
  EXPECT_GT(index.ResidentBytes(), empty_bytes);
}

TEST(DynamicIndexTest, RegistryWrapperOpensSavedIndex) {
  MemEnv env;
  Collection data = SmallCollection(150);
  {
    auto created = DynamicIndex::Create(
        &env, "wrapped", SmallOptions("chunked", "", /*buffer=*/40));
    ASSERT_TRUE(created.ok());
    for (size_t i = 0; i < data.size(); ++i) {
      ASSERT_TRUE((*created)->Insert(data.Id(i), data.Vector(i)).ok());
    }
    ASSERT_TRUE((*created)->Delete(data.Id(5)).ok());
    ASSERT_TRUE((*created)->Save().ok());
  }

  ASSERT_TRUE(RegisterDynamicMethod(MethodRegistry::Global()).ok());
  // Idempotent.
  ASSERT_TRUE(RegisterDynamicMethod(MethodRegistry::Global()).ok());

  MethodContext context;
  context.env = &env;
  auto method = MethodRegistry::Global().Create("dynamic", context,
                                                "base=wrapped");
  ASSERT_TRUE(method.ok()) << method.status().ToString();
  ASSERT_TRUE((*method)->Prepare().ok());
  auto result = (*method)->Search(data.Vector(7), 3, StopRule::Exact());
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->neighbors[0].id, data.Id(7));
  EXPECT_GT((*method)->ResidentBytes(), 0u);

  // Unknown parameters and a missing base fail loudly.
  EXPECT_FALSE(
      MethodRegistry::Global().Create("dynamic", context, "").ok());
  EXPECT_FALSE(MethodRegistry::Global()
                   .Create("dynamic", context, "base=wrapped,bogus=1")
                   .ok());
}

TEST(DynamicIndexTest, LevelingPolicyKeepsShardCountLow) {
  MemEnv env;
  Collection data = SmallCollection(360);
  auto created = DynamicIndex::Create(
      &env, "dyn",
      SmallOptions("exact-scan", "", /*buffer=*/30, /*scale=*/2,
                   MergePolicy::kLeveling));
  ASSERT_TRUE(created.ok());
  DynamicIndex& index = **created;
  std::map<DescriptorId, std::vector<float>> live;
  for (size_t i = 0; i < data.size(); ++i) {
    ASSERT_TRUE(index.Insert(data.Id(i), data.Vector(i)).ok());
    live[data.Id(i)] = {data.Vector(i).begin(), data.Vector(i).end()};
  }
  // Leveling: at most one shard per level.
  std::map<uint32_t, int> per_level;
  const DynamicStats stats = index.Stats();
  EXPECT_GT(stats.merges, 0u);
  const auto queries = SmallQueries(data, 4);
  for (const auto& q : queries) {
    auto result = index.Search(q, 6, StopRule::Exact());
    ASSERT_TRUE(result.ok());
    ExpectSameNeighbors(result->neighbors, BruteForce(live, q, 6),
                        "leveling");
    for (const ShardAttribution& attribution : result->shards) {
      if (attribution.shard_id != ShardAttribution::kMutableBuffer) {
        EXPECT_LE(++per_level[attribution.level], 1) << "leveling invariant";
      }
    }
    per_level.clear();
  }
}

}  // namespace
}  // namespace qvt
