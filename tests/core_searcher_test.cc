#include "core/searcher.h"

#include <gtest/gtest.h>

#include "cluster/round_robin.h"
#include "cluster/srtree_chunker.h"
#include "core/exact_scan.h"
#include "descriptor/generator.h"
#include "descriptor/workload.h"
#include "geometry/kernels.h"
#include "geometry/vec.h"
#include "util/logging.h"
#include "util/random.h"

namespace qvt {
namespace {

Collection TestCollection(uint64_t seed = 21) {
  GeneratorConfig config;
  config.num_images = 40;
  config.descriptors_per_image = 25;
  config.num_modes = 8;
  config.seed = seed;
  return GenerateCollection(config);
}

struct IndexFixture {
  MemEnv env;
  Collection collection;
  std::optional<ChunkIndex> index;

  explicit IndexFixture(Chunker* chunker, uint64_t seed = 21)
      : collection(TestCollection(seed)) {
    auto chunking = chunker->FormChunks(collection);
    QVT_CHECK(chunking.ok());
    auto built = ChunkIndex::Build(collection, *chunking, &env,
                                   ChunkIndexPaths::ForBase("idx"));
    QVT_CHECK(built.ok());
    index.emplace(std::move(built).value());
  }
};

TEST(SearcherTest, ExactSearchMatchesSequentialScan) {
  SrTreeChunker chunker(80);
  IndexFixture fx(&chunker);
  Searcher searcher(&*fx.index, DiskCostModel());

  Rng rng(5);
  for (int trial = 0; trial < 10; ++trial) {
    std::vector<float> query(kDescriptorDim);
    for (auto& x : query) x = static_cast<float>(rng.UniformDouble(20, 80));

    auto result = searcher.Search(query, 10, StopRule::Exact());
    ASSERT_TRUE(result.ok());
    EXPECT_TRUE(result->exact);
    const auto truth = ExactScan(fx.collection, query, 10);
    ASSERT_EQ(result->neighbors.size(), 10u);
    for (size_t i = 0; i < 10; ++i) {
      EXPECT_NEAR(result->neighbors[i].distance, truth[i].distance, 1e-6);
    }
  }
}

TEST(SearcherTest, ExactStopReadsFewerChunksThanAll) {
  SrTreeChunker chunker(60);
  IndexFixture fx(&chunker);
  Searcher searcher(&*fx.index, DiskCostModel());

  // A dataset query sits inside a chunk; the exact search should prune.
  const auto query = fx.collection.Vector(100);
  auto result = searcher.Search(query, 5, StopRule::Exact());
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->exact);
  EXPECT_LT(result->chunks_read, fx.index->num_chunks());
  EXPECT_GT(result->chunks_read, 0u);
  // The query itself is its own nearest neighbor.
  EXPECT_DOUBLE_EQ(result->neighbors[0].distance, 0.0);
}

TEST(SearcherTest, MaxChunksStopRespected) {
  SrTreeChunker chunker(60);
  IndexFixture fx(&chunker);
  Searcher searcher(&*fx.index, DiskCostModel());

  const auto query = fx.collection.Vector(0);
  for (size_t budget : {1u, 3u, 7u}) {
    auto result = searcher.Search(query, 30, StopRule::MaxChunks(budget));
    ASSERT_TRUE(result.ok());
    EXPECT_EQ(result->chunks_read, std::min<size_t>(budget,
                                                    fx.index->num_chunks()));
    EXPECT_FALSE(result->exact);
  }
}

TEST(SearcherTest, ZeroChunkBudgetReturnsEmpty) {
  SrTreeChunker chunker(60);
  IndexFixture fx(&chunker);
  Searcher searcher(&*fx.index, DiskCostModel());
  auto result =
      searcher.Search(fx.collection.Vector(0), 5, StopRule::MaxChunks(0));
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->chunks_read, 0u);
  EXPECT_TRUE(result->neighbors.empty());
}

TEST(SearcherTest, TimeBudgetStopsEarly) {
  SrTreeChunker chunker(60);
  IndexFixture fx(&chunker);
  Searcher searcher(&*fx.index, DiskCostModel());

  const auto query = fx.collection.Vector(50);
  // Zero budget: the model time after index scan alone exceeds it.
  auto tiny = searcher.Search(query, 30, StopRule::TimeBudget(0));
  ASSERT_TRUE(tiny.ok());
  EXPECT_EQ(tiny->chunks_read, 0u);

  // Generous budget: search reads chunks.
  auto roomy = searcher.Search(query, 30,
                               StopRule::TimeBudget(60LL * 1000 * 1000));
  ASSERT_TRUE(roomy.ok());
  EXPECT_GT(roomy->chunks_read, 0u);
}

TEST(SearcherTest, TimeBudgetIsMonotoneInChunksRead) {
  SrTreeChunker chunker(60);
  IndexFixture fx(&chunker);
  Searcher searcher(&*fx.index, DiskCostModel());
  const auto query = fx.collection.Vector(7);

  size_t last_chunks = 0;
  for (int64_t budget_ms : {20, 60, 200, 2000}) {
    auto result =
        searcher.Search(query, 30, StopRule::TimeBudget(budget_ms * 1000));
    ASSERT_TRUE(result.ok());
    EXPECT_GE(result->chunks_read, last_chunks);
    last_chunks = result->chunks_read;
  }
}

TEST(SearcherTest, ObserverSeesMonotoneProgress) {
  RoundRobinChunker chunker(50);
  IndexFixture fx(&chunker);
  Searcher searcher(&*fx.index, DiskCostModel());

  size_t calls = 0;
  int64_t last_model = 0;
  uint64_t last_descriptors = 0;
  const SearchObserver observer = [&](const SearchProgress& progress) {
    ++calls;
    EXPECT_EQ(progress.chunks_read, calls);
    EXPECT_GT(progress.model_elapsed_micros, last_model);
    EXPECT_GT(progress.descriptors_processed, last_descriptors);
    EXPECT_NE(progress.result, nullptr);
    last_model = progress.model_elapsed_micros;
    last_descriptors = progress.descriptors_processed;
  };
  auto result = searcher.Search(fx.collection.Vector(3), 10,
                                StopRule::Exact(), observer);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(calls, result->chunks_read);
}

TEST(SearcherTest, ModelTimeIncludesIndexScan) {
  SrTreeChunker chunker(60);
  IndexFixture fx(&chunker);
  DiskCostModel model;
  Searcher searcher(&*fx.index, model);
  auto result =
      searcher.Search(fx.collection.Vector(0), 5, StopRule::MaxChunks(0));
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->model_elapsed_micros,
            model.IndexScanMicros(fx.index->num_chunks()));
}

TEST(SearcherTest, InvalidArgumentsRejected) {
  SrTreeChunker chunker(60);
  IndexFixture fx(&chunker);
  Searcher searcher(&*fx.index, DiskCostModel());
  EXPECT_TRUE(searcher.Search(fx.collection.Vector(0), 0, StopRule::Exact())
                  .status()
                  .IsInvalidArgument());
  std::vector<float> wrong_dim(7, 0.0f);
  EXPECT_TRUE(searcher.Search(wrong_dim, 5, StopRule::Exact())
                  .status()
                  .IsInvalidArgument());
}

TEST(SearcherTest, RangeSearchMatchesBruteForce) {
  SrTreeChunker chunker(60);
  IndexFixture fx(&chunker);
  Searcher searcher(&*fx.index, DiskCostModel());

  Rng rng(99);
  for (int trial = 0; trial < 8; ++trial) {
    const size_t pos = rng.Uniform(fx.collection.size());
    const double radius = rng.UniformDouble(1.0, 12.0);
    auto result = searcher.SearchRange(fx.collection.Vector(pos), radius,
                                       StopRule::Exact());
    ASSERT_TRUE(result.ok());
    EXPECT_TRUE(result->exact);

    size_t expected = 0;
    for (size_t i = 0; i < fx.collection.size(); ++i) {
      if (vec::Distance(fx.collection.Vector(i),
                        fx.collection.Vector(pos)) <= radius) {
        ++expected;
      }
    }
    EXPECT_EQ(result->neighbors.size(), expected) << "radius " << radius;
    for (size_t i = 1; i < result->neighbors.size(); ++i) {
      EXPECT_GE(result->neighbors[i].distance,
                result->neighbors[i - 1].distance);
    }
    // The bound-based pruning must save reads for small balls.
    EXPECT_LE(result->chunks_read, fx.index->num_chunks());
  }
}

TEST(SearcherTest, ApproximateRangeIsSubset) {
  SrTreeChunker chunker(60);
  IndexFixture fx(&chunker);
  Searcher searcher(&*fx.index, DiskCostModel());
  const auto query = fx.collection.Vector(33);
  const double radius = 8.0;

  auto exact = searcher.SearchRange(query, radius, StopRule::Exact());
  auto approx = searcher.SearchRange(query, radius, StopRule::MaxChunks(2));
  ASSERT_TRUE(exact.ok());
  ASSERT_TRUE(approx.ok());
  EXPECT_FALSE(approx->exact);
  EXPECT_LE(approx->neighbors.size(), exact->neighbors.size());
  // Every approximate hit is a true hit.
  for (const Neighbor& a : approx->neighbors) {
    bool found = false;
    for (const Neighbor& e : exact->neighbors) {
      if (e.id == a.id) {
        found = true;
        break;
      }
    }
    EXPECT_TRUE(found);
  }
}

// The kernel layer's determinism contract at the API that matters: the same
// queries through the forced-scalar path and through the best SIMD backend
// must return bit-identical SearchResults (ids, distances, chunks read,
// modeled time), so QVT_SIMD=off is purely a speed knob.
TEST(SearcherTest, SimdAndScalarBackendsReturnIdenticalResults) {
  SrTreeChunker chunker(60);
  IndexFixture fx(&chunker);
  Searcher searcher(&*fx.index, DiskCostModel());
  const kernels::Backend best = kernels::ActiveBackend();

  Rng rng(321);
  for (int trial = 0; trial < 12; ++trial) {
    std::vector<float> query(kDescriptorDim);
    for (auto& x : query) x = static_cast<float>(rng.UniformDouble(20, 80));
    const double radius = rng.UniformDouble(2.0, 12.0);

    kernels::SetBackendForTesting(kernels::Backend::kScalar);
    auto knn_scalar = searcher.Search(query, 10, StopRule::Exact());
    auto range_scalar = searcher.SearchRange(query, radius, StopRule::Exact());
    kernels::SetBackendForTesting(best);
    auto knn_simd = searcher.Search(query, 10, StopRule::Exact());
    auto range_simd = searcher.SearchRange(query, radius, StopRule::Exact());
    kernels::ResetBackendForTesting();

    ASSERT_TRUE(knn_scalar.ok() && knn_simd.ok());
    ASSERT_TRUE(range_scalar.ok() && range_simd.ok());
    for (auto [a, b] : {std::pair{&*knn_scalar, &*knn_simd},
                        std::pair{&*range_scalar, &*range_simd}}) {
      EXPECT_EQ(a->chunks_read, b->chunks_read);
      EXPECT_EQ(a->descriptors_processed, b->descriptors_processed);
      EXPECT_EQ(a->model_elapsed_micros, b->model_elapsed_micros);
      EXPECT_EQ(a->exact, b->exact);
      ASSERT_EQ(a->neighbors.size(), b->neighbors.size());
      for (size_t i = 0; i < a->neighbors.size(); ++i) {
        EXPECT_EQ(a->neighbors[i].id, b->neighbors[i].id) << "rank " << i;
        // Bitwise equality, not almost-equal: the kernels promise it.
        EXPECT_EQ(a->neighbors[i].distance, b->neighbors[i].distance)
            << "rank " << i;
      }
    }
  }
}

TEST(SearcherTest, RangeSearchRejectsBadArguments) {
  SrTreeChunker chunker(60);
  IndexFixture fx(&chunker);
  Searcher searcher(&*fx.index, DiskCostModel());
  EXPECT_TRUE(searcher
                  .SearchRange(fx.collection.Vector(0), -0.5,
                               StopRule::Exact())
                  .status()
                  .IsInvalidArgument());
  std::vector<float> wrong(3, 0.0f);
  EXPECT_TRUE(searcher.SearchRange(wrong, 1.0, StopRule::Exact())
                  .status()
                  .IsInvalidArgument());
}

TEST(SearcherTest, ExactAcrossChunkersAgrees) {
  // Whatever the chunking, exact search must return identical distances.
  SrTreeChunker sr(70);
  RoundRobinChunker rr(70);
  IndexFixture sr_fx(&sr, 33);
  IndexFixture rr_fx(&rr, 33);
  Searcher sr_search(&*sr_fx.index, DiskCostModel());
  Searcher rr_search(&*rr_fx.index, DiskCostModel());

  Rng rng(2);
  for (int trial = 0; trial < 5; ++trial) {
    std::vector<float> query(kDescriptorDim);
    for (auto& x : query) x = static_cast<float>(rng.UniformDouble(30, 70));
    auto a = sr_search.Search(query, 8, StopRule::Exact());
    auto b = rr_search.Search(query, 8, StopRule::Exact());
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    for (size_t i = 0; i < 8; ++i) {
      EXPECT_NEAR(a->neighbors[i].distance, b->neighbors[i].distance, 1e-6);
    }
  }
}

TEST(SearcherTest, EpsilonApproximationBoundsError) {
  SrTreeChunker chunker(60);
  IndexFixture fx(&chunker);
  Searcher searcher(&*fx.index, DiskCostModel());

  Rng rng(77);
  for (int trial = 0; trial < 8; ++trial) {
    std::vector<float> query(kDescriptorDim);
    for (auto& x : query) x = static_cast<float>(rng.UniformDouble(30, 70));
    auto exact = searcher.Search(query, 10, StopRule::Exact());
    ASSERT_TRUE(exact.ok());
    for (double epsilon : {0.2, 1.0}) {
      auto approx =
          searcher.Search(query, 10, StopRule::EpsilonApproximate(epsilon));
      ASSERT_TRUE(approx.ok());
      // The exactness flag may only be claimed when every chunk was
      // scanned (then the answer is exact regardless of epsilon).
      if (approx->exact) {
        EXPECT_EQ(approx->chunks_read, fx.index->num_chunks());
      }
      // (1+eps)-guarantee: every reported distance is within (1+eps) of the
      // true distance at that rank.
      for (size_t i = 0; i < 10; ++i) {
        EXPECT_LE(approx->neighbors[i].distance,
                  (1.0 + epsilon) * exact->neighbors[i].distance + 1e-9);
      }
      // Never more work than the exact search.
      EXPECT_LE(approx->chunks_read, exact->chunks_read);
    }
  }
}

TEST(SearcherTest, ZeroEpsilonEqualsExact) {
  SrTreeChunker chunker(60);
  IndexFixture fx(&chunker);
  Searcher searcher(&*fx.index, DiskCostModel());
  const auto query = fx.collection.Vector(42);
  auto a = searcher.Search(query, 10, StopRule::Exact());
  auto b = searcher.Search(query, 10, StopRule::EpsilonApproximate(0.0));
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_TRUE(b->exact);
  EXPECT_EQ(a->chunks_read, b->chunks_read);
  for (size_t i = 0; i < 10; ++i) {
    EXPECT_EQ(a->neighbors[i].id, b->neighbors[i].id);
  }
}

// ---------------------------------------------------------------------------
// Prefetch pipeline bit-identity
// ---------------------------------------------------------------------------

PrefetcherOptions Depth(size_t depth) {
  PrefetcherOptions options;
  options.depth = depth;
  return options;
}

// Everything the cost model and quality evaluation consume must be equal —
// and distances bitwise so, since prefetching never touches the math.
void ExpectBitIdentical(const SearchResult& a, const SearchResult& b) {
  EXPECT_EQ(a.chunks_read, b.chunks_read);
  EXPECT_EQ(a.descriptors_processed, b.descriptors_processed);
  EXPECT_EQ(a.model_elapsed_micros, b.model_elapsed_micros);
  EXPECT_EQ(a.exact, b.exact);
  ASSERT_EQ(a.neighbors.size(), b.neighbors.size());
  for (size_t i = 0; i < a.neighbors.size(); ++i) {
    EXPECT_EQ(a.neighbors[i].id, b.neighbors[i].id) << "rank " << i;
    EXPECT_EQ(a.neighbors[i].distance, b.neighbors[i].distance)
        << "rank " << i;
  }
}

// Satellite regression: the vectorized RankChunks (one batched kernel call
// over the contiguous centroid matrix) must reproduce the old per-centroid
// vec::Distance loop bit-for-bit, ties broken by chunk id.
TEST(SearcherTest, RankChunksMatchesScalarCentroidReference) {
  SrTreeChunker chunker(60);
  IndexFixture fx(&chunker);
  Searcher searcher(&*fx.index, DiskCostModel());
  const size_t num_chunks = fx.index->num_chunks();

  Rng rng(17);
  for (int trial = 0; trial < 10; ++trial) {
    std::vector<float> query(kDescriptorDim);
    for (auto& x : query) x = static_cast<float>(rng.UniformDouble(20, 80));

    SearchScratch scratch;
    searcher.RankChunks(query, scratch);

    std::vector<double> reference(num_chunks);
    std::vector<uint32_t> order(num_chunks);
    for (size_t i = 0; i < num_chunks; ++i) {
      order[i] = static_cast<uint32_t>(i);
      reference[i] = vec::Distance(query, fx.index->centroid(i));
    }
    std::sort(order.begin(), order.end(), [&](uint32_t a, uint32_t b) {
      if (reference[a] != reference[b]) return reference[a] < reference[b];
      return a < b;
    });

    ASSERT_EQ(scratch.rank_order.size(), num_chunks);
    for (size_t i = 0; i < num_chunks; ++i) {
      EXPECT_EQ(scratch.centroid_distance[i], reference[i]) << "chunk " << i;
      EXPECT_EQ(scratch.rank_order[i], order[i]) << "rank " << i;
    }
  }
}

// The tentpole's core promise: at every depth, under every stop rule, the
// pipelined search returns the same bits as the synchronous one — prefetch
// moves *when* bytes arrive, never what is scanned or what is charged.
TEST(PrefetchSearcherTest, PipelinedSearchIsBitIdenticalToSynchronous) {
  SrTreeChunker chunker(60);
  IndexFixture fx(&chunker);
  Searcher sync(&*fx.index, DiskCostModel(), nullptr, Depth(0));
  ASSERT_EQ(sync.prefetcher(), nullptr);

  const StopRule rules[] = {
      StopRule::Exact(), StopRule::EpsilonApproximate(0.5),
      StopRule::MaxChunks(3), StopRule::TimeBudget(60LL * 1000),
      StopRule::TimeBudget(500LL * 1000)};

  for (size_t depth : {1u, 2u, 4u, 8u}) {
    Searcher pipelined(&*fx.index, DiskCostModel(), nullptr, Depth(depth));
    ASSERT_NE(pipelined.prefetcher(), nullptr);
    Rng rng(depth);
    for (int trial = 0; trial < 4; ++trial) {
      std::vector<float> query(kDescriptorDim);
      for (auto& x : query) x = static_cast<float>(rng.UniformDouble(20, 80));
      for (const StopRule& rule : rules) {
        auto a = sync.Search(query, 10, rule);
        auto b = pipelined.Search(query, 10, rule);
        ASSERT_TRUE(a.ok());
        ASSERT_TRUE(b.ok());
        ExpectBitIdentical(*a, *b);
        // The pipeline's own ledger must balance, and the synchronous
        // searcher must not have touched it at all.
        const PrefetchStats& p = b->prefetch;
        EXPECT_EQ(p.issued, p.used + p.wasted + p.cancelled);
        EXPECT_EQ(p.used, b->chunks_read);  // no cache: every chunk is read
        EXPECT_EQ(a->prefetch.issued, 0u);
        // The overlapped wall-time model can only improve on the depth-0
        // timeline (the strict io+cpu serial schedule the sync path reports;
        // model_elapsed_micros is no upper bound — the paper's per-chunk
        // max(io, cpu) charge already overlaps a chunk's I/O with its *own*
        // scan, which a real pipeline cannot do for the first read).
        EXPECT_LE(b->model_overlapped_micros, a->model_overlapped_micros);
      }
    }
  }
}

TEST(PrefetchSearcherTest, PipelinedCachedSearchMatchesSynchronousCached) {
  SrTreeChunker chunker(60);
  IndexFixture fx(&chunker);
  // Two identical caches, sized for eviction churn, fed the exact same
  // query sequence: results, hit/miss streams, and final contents must not
  // be distinguishable between the two paths.
  ChunkCache sync_cache(64);
  ChunkCache pipe_cache(64);
  Searcher sync(&*fx.index, DiskCostModel(), &sync_cache, Depth(0));
  Searcher pipelined(&*fx.index, DiskCostModel(), &pipe_cache, Depth(4));

  const StopRule rules[] = {StopRule::Exact(), StopRule::MaxChunks(5),
                            StopRule::TimeBudget(200LL * 1000)};
  for (size_t pos : {0u, 11u, 222u, 333u, 11u, 0u}) {  // repeats: warm hits
    for (const StopRule& rule : rules) {
      auto a = sync.Search(fx.collection.Vector(pos), 10, rule);
      auto b = pipelined.Search(fx.collection.Vector(pos), 10, rule);
      ASSERT_TRUE(a.ok());
      ASSERT_TRUE(b.ok());
      ExpectBitIdentical(*a, *b);
    }
  }
  // Same hit/miss/eviction history: the stream's peek-then-authoritative-Get
  // discipline leaves the cache exactly as the synchronous path does.
  const ChunkCacheStats sa = sync_cache.Stats();
  const ChunkCacheStats sb = pipe_cache.Stats();
  EXPECT_EQ(sa.hits, sb.hits);
  EXPECT_EQ(sa.misses, sb.misses);
  EXPECT_EQ(sa.evictions, sb.evictions);
  EXPECT_EQ(sync_cache.used_pages(), pipe_cache.used_pages());
  EXPECT_EQ(sync_cache.size(), pipe_cache.size());
}

// A stop rule firing mid-order must cancel the stranded read-ahead without
// perturbing the answer — the crash-safety half is covered in
// storage_prefetcher_test (a cancelled read never publishes).
TEST(PrefetchSearcherTest, MidScanExactStopCancelsStrandedReads) {
  SrTreeChunker chunker(60);
  IndexFixture fx(&chunker);
  Searcher sync(&*fx.index, DiskCostModel(), nullptr, Depth(0));
  Searcher pipelined(&*fx.index, DiskCostModel(), nullptr, Depth(8));

  // A dataset query prunes after a few chunks (the exact stop fires with
  // most of the order unread), so the 8-deep window is left stranded.
  const auto query = fx.collection.Vector(100);
  auto a = sync.Search(query, 5, StopRule::Exact());
  auto b = pipelined.Search(query, 5, StopRule::Exact());
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ExpectBitIdentical(*a, *b);
  ASSERT_LT(b->chunks_read, fx.index->num_chunks());

  const PrefetchStats& p = b->prefetch;
  EXPECT_EQ(p.used, b->chunks_read);
  EXPECT_GT(p.issued, p.used);  // the window had run ahead of the stop
  EXPECT_EQ(p.issued, p.used + p.wasted + p.cancelled);
  EXPECT_GT(p.wasted + p.cancelled, 0u);
}

TEST(PrefetchSearcherTest, PipelinedRangeSearchIsBitIdenticalToSynchronous) {
  SrTreeChunker chunker(60);
  IndexFixture fx(&chunker);
  ChunkCache sync_cache(100000);
  ChunkCache pipe_cache(100000);
  Searcher sync_plain(&*fx.index, DiskCostModel(), nullptr, Depth(0));
  Searcher pipe_plain(&*fx.index, DiskCostModel(), nullptr, Depth(4));
  Searcher sync_cached(&*fx.index, DiskCostModel(), &sync_cache, Depth(0));
  Searcher pipe_cached(&*fx.index, DiskCostModel(), &pipe_cache, Depth(4));

  const StopRule rules[] = {StopRule::Exact(), StopRule::MaxChunks(2)};
  Rng rng(7);
  for (int trial = 0; trial < 6; ++trial) {
    const size_t pos = rng.Uniform(fx.collection.size());
    const double radius = rng.UniformDouble(2.0, 12.0);
    for (const StopRule& rule : rules) {
      auto a = sync_plain.SearchRange(fx.collection.Vector(pos), radius, rule);
      auto b = pipe_plain.SearchRange(fx.collection.Vector(pos), radius, rule);
      ASSERT_TRUE(a.ok());
      ASSERT_TRUE(b.ok());
      ExpectBitIdentical(*a, *b);

      auto c =
          sync_cached.SearchRange(fx.collection.Vector(pos), radius, rule);
      auto d =
          pipe_cached.SearchRange(fx.collection.Vector(pos), radius, rule);
      ASSERT_TRUE(c.ok());
      ASSERT_TRUE(d.ok());
      ExpectBitIdentical(*c, *d);
    }
  }
  EXPECT_EQ(sync_cache.Stats().hits, pipe_cache.Stats().hits);
  EXPECT_EQ(sync_cache.Stats().misses, pipe_cache.Stats().misses);
}

TEST(SearcherTest, ApproximateIsSubsetQualityOfExact) {
  SrTreeChunker chunker(60);
  IndexFixture fx(&chunker);
  Searcher searcher(&*fx.index, DiskCostModel());
  const auto query = fx.collection.Vector(123);

  auto exact = searcher.Search(query, 10, StopRule::Exact());
  ASSERT_TRUE(exact.ok());
  auto approx = searcher.Search(query, 10, StopRule::MaxChunks(2));
  ASSERT_TRUE(approx.ok());
  // The approximate k-th distance can never beat the exact one.
  ASSERT_FALSE(approx->neighbors.empty());
  EXPECT_GE(approx->neighbors.back().distance,
            exact->neighbors.back().distance - 1e-9);
}

}  // namespace
}  // namespace qvt
