#include "core/searcher.h"

#include <gtest/gtest.h>

#include "cluster/round_robin.h"
#include "cluster/srtree_chunker.h"
#include "core/exact_scan.h"
#include "descriptor/generator.h"
#include "descriptor/workload.h"
#include "geometry/kernels.h"
#include "geometry/vec.h"
#include "util/logging.h"
#include "util/random.h"

namespace qvt {
namespace {

Collection TestCollection(uint64_t seed = 21) {
  GeneratorConfig config;
  config.num_images = 40;
  config.descriptors_per_image = 25;
  config.num_modes = 8;
  config.seed = seed;
  return GenerateCollection(config);
}

struct IndexFixture {
  MemEnv env;
  Collection collection;
  std::optional<ChunkIndex> index;

  explicit IndexFixture(Chunker* chunker, uint64_t seed = 21)
      : collection(TestCollection(seed)) {
    auto chunking = chunker->FormChunks(collection);
    QVT_CHECK(chunking.ok());
    auto built = ChunkIndex::Build(collection, *chunking, &env,
                                   ChunkIndexPaths::ForBase("idx"));
    QVT_CHECK(built.ok());
    index.emplace(std::move(built).value());
  }
};

TEST(SearcherTest, ExactSearchMatchesSequentialScan) {
  SrTreeChunker chunker(80);
  IndexFixture fx(&chunker);
  Searcher searcher(&*fx.index, DiskCostModel());

  Rng rng(5);
  for (int trial = 0; trial < 10; ++trial) {
    std::vector<float> query(kDescriptorDim);
    for (auto& x : query) x = static_cast<float>(rng.UniformDouble(20, 80));

    auto result = searcher.Search(query, 10, StopRule::Exact());
    ASSERT_TRUE(result.ok());
    EXPECT_TRUE(result->exact);
    const auto truth = ExactScan(fx.collection, query, 10);
    ASSERT_EQ(result->neighbors.size(), 10u);
    for (size_t i = 0; i < 10; ++i) {
      EXPECT_NEAR(result->neighbors[i].distance, truth[i].distance, 1e-6);
    }
  }
}

TEST(SearcherTest, ExactStopReadsFewerChunksThanAll) {
  SrTreeChunker chunker(60);
  IndexFixture fx(&chunker);
  Searcher searcher(&*fx.index, DiskCostModel());

  // A dataset query sits inside a chunk; the exact search should prune.
  const auto query = fx.collection.Vector(100);
  auto result = searcher.Search(query, 5, StopRule::Exact());
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->exact);
  EXPECT_LT(result->chunks_read, fx.index->num_chunks());
  EXPECT_GT(result->chunks_read, 0u);
  // The query itself is its own nearest neighbor.
  EXPECT_DOUBLE_EQ(result->neighbors[0].distance, 0.0);
}

TEST(SearcherTest, MaxChunksStopRespected) {
  SrTreeChunker chunker(60);
  IndexFixture fx(&chunker);
  Searcher searcher(&*fx.index, DiskCostModel());

  const auto query = fx.collection.Vector(0);
  for (size_t budget : {1u, 3u, 7u}) {
    auto result = searcher.Search(query, 30, StopRule::MaxChunks(budget));
    ASSERT_TRUE(result.ok());
    EXPECT_EQ(result->chunks_read, std::min<size_t>(budget,
                                                    fx.index->num_chunks()));
    EXPECT_FALSE(result->exact);
  }
}

TEST(SearcherTest, ZeroChunkBudgetReturnsEmpty) {
  SrTreeChunker chunker(60);
  IndexFixture fx(&chunker);
  Searcher searcher(&*fx.index, DiskCostModel());
  auto result =
      searcher.Search(fx.collection.Vector(0), 5, StopRule::MaxChunks(0));
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->chunks_read, 0u);
  EXPECT_TRUE(result->neighbors.empty());
}

TEST(SearcherTest, TimeBudgetStopsEarly) {
  SrTreeChunker chunker(60);
  IndexFixture fx(&chunker);
  Searcher searcher(&*fx.index, DiskCostModel());

  const auto query = fx.collection.Vector(50);
  // Zero budget: the model time after index scan alone exceeds it.
  auto tiny = searcher.Search(query, 30, StopRule::TimeBudget(0));
  ASSERT_TRUE(tiny.ok());
  EXPECT_EQ(tiny->chunks_read, 0u);

  // Generous budget: search reads chunks.
  auto roomy = searcher.Search(query, 30,
                               StopRule::TimeBudget(60LL * 1000 * 1000));
  ASSERT_TRUE(roomy.ok());
  EXPECT_GT(roomy->chunks_read, 0u);
}

TEST(SearcherTest, TimeBudgetIsMonotoneInChunksRead) {
  SrTreeChunker chunker(60);
  IndexFixture fx(&chunker);
  Searcher searcher(&*fx.index, DiskCostModel());
  const auto query = fx.collection.Vector(7);

  size_t last_chunks = 0;
  for (int64_t budget_ms : {20, 60, 200, 2000}) {
    auto result =
        searcher.Search(query, 30, StopRule::TimeBudget(budget_ms * 1000));
    ASSERT_TRUE(result.ok());
    EXPECT_GE(result->chunks_read, last_chunks);
    last_chunks = result->chunks_read;
  }
}

TEST(SearcherTest, ObserverSeesMonotoneProgress) {
  RoundRobinChunker chunker(50);
  IndexFixture fx(&chunker);
  Searcher searcher(&*fx.index, DiskCostModel());

  size_t calls = 0;
  int64_t last_model = 0;
  uint64_t last_descriptors = 0;
  const SearchObserver observer = [&](const SearchProgress& progress) {
    ++calls;
    EXPECT_EQ(progress.chunks_read, calls);
    EXPECT_GT(progress.model_elapsed_micros, last_model);
    EXPECT_GT(progress.descriptors_processed, last_descriptors);
    EXPECT_NE(progress.result, nullptr);
    last_model = progress.model_elapsed_micros;
    last_descriptors = progress.descriptors_processed;
  };
  auto result = searcher.Search(fx.collection.Vector(3), 10,
                                StopRule::Exact(), observer);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(calls, result->chunks_read);
}

TEST(SearcherTest, ModelTimeIncludesIndexScan) {
  SrTreeChunker chunker(60);
  IndexFixture fx(&chunker);
  DiskCostModel model;
  Searcher searcher(&*fx.index, model);
  auto result =
      searcher.Search(fx.collection.Vector(0), 5, StopRule::MaxChunks(0));
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->model_elapsed_micros,
            model.IndexScanMicros(fx.index->num_chunks()));
}

TEST(SearcherTest, InvalidArgumentsRejected) {
  SrTreeChunker chunker(60);
  IndexFixture fx(&chunker);
  Searcher searcher(&*fx.index, DiskCostModel());
  EXPECT_TRUE(searcher.Search(fx.collection.Vector(0), 0, StopRule::Exact())
                  .status()
                  .IsInvalidArgument());
  std::vector<float> wrong_dim(7, 0.0f);
  EXPECT_TRUE(searcher.Search(wrong_dim, 5, StopRule::Exact())
                  .status()
                  .IsInvalidArgument());
}

TEST(SearcherTest, RangeSearchMatchesBruteForce) {
  SrTreeChunker chunker(60);
  IndexFixture fx(&chunker);
  Searcher searcher(&*fx.index, DiskCostModel());

  Rng rng(99);
  for (int trial = 0; trial < 8; ++trial) {
    const size_t pos = rng.Uniform(fx.collection.size());
    const double radius = rng.UniformDouble(1.0, 12.0);
    auto result = searcher.SearchRange(fx.collection.Vector(pos), radius,
                                       StopRule::Exact());
    ASSERT_TRUE(result.ok());
    EXPECT_TRUE(result->exact);

    size_t expected = 0;
    for (size_t i = 0; i < fx.collection.size(); ++i) {
      if (vec::Distance(fx.collection.Vector(i),
                        fx.collection.Vector(pos)) <= radius) {
        ++expected;
      }
    }
    EXPECT_EQ(result->neighbors.size(), expected) << "radius " << radius;
    for (size_t i = 1; i < result->neighbors.size(); ++i) {
      EXPECT_GE(result->neighbors[i].distance,
                result->neighbors[i - 1].distance);
    }
    // The bound-based pruning must save reads for small balls.
    EXPECT_LE(result->chunks_read, fx.index->num_chunks());
  }
}

TEST(SearcherTest, ApproximateRangeIsSubset) {
  SrTreeChunker chunker(60);
  IndexFixture fx(&chunker);
  Searcher searcher(&*fx.index, DiskCostModel());
  const auto query = fx.collection.Vector(33);
  const double radius = 8.0;

  auto exact = searcher.SearchRange(query, radius, StopRule::Exact());
  auto approx = searcher.SearchRange(query, radius, StopRule::MaxChunks(2));
  ASSERT_TRUE(exact.ok());
  ASSERT_TRUE(approx.ok());
  EXPECT_FALSE(approx->exact);
  EXPECT_LE(approx->neighbors.size(), exact->neighbors.size());
  // Every approximate hit is a true hit.
  for (const Neighbor& a : approx->neighbors) {
    bool found = false;
    for (const Neighbor& e : exact->neighbors) {
      if (e.id == a.id) {
        found = true;
        break;
      }
    }
    EXPECT_TRUE(found);
  }
}

// The kernel layer's determinism contract at the API that matters: the same
// queries through the forced-scalar path and through the best SIMD backend
// must return bit-identical SearchResults (ids, distances, chunks read,
// modeled time), so QVT_SIMD=off is purely a speed knob.
TEST(SearcherTest, SimdAndScalarBackendsReturnIdenticalResults) {
  SrTreeChunker chunker(60);
  IndexFixture fx(&chunker);
  Searcher searcher(&*fx.index, DiskCostModel());
  const kernels::Backend best = kernels::ActiveBackend();

  Rng rng(321);
  for (int trial = 0; trial < 12; ++trial) {
    std::vector<float> query(kDescriptorDim);
    for (auto& x : query) x = static_cast<float>(rng.UniformDouble(20, 80));
    const double radius = rng.UniformDouble(2.0, 12.0);

    kernels::SetBackendForTesting(kernels::Backend::kScalar);
    auto knn_scalar = searcher.Search(query, 10, StopRule::Exact());
    auto range_scalar = searcher.SearchRange(query, radius, StopRule::Exact());
    kernels::SetBackendForTesting(best);
    auto knn_simd = searcher.Search(query, 10, StopRule::Exact());
    auto range_simd = searcher.SearchRange(query, radius, StopRule::Exact());
    kernels::ResetBackendForTesting();

    ASSERT_TRUE(knn_scalar.ok() && knn_simd.ok());
    ASSERT_TRUE(range_scalar.ok() && range_simd.ok());
    for (auto [a, b] : {std::pair{&*knn_scalar, &*knn_simd},
                        std::pair{&*range_scalar, &*range_simd}}) {
      EXPECT_EQ(a->chunks_read, b->chunks_read);
      EXPECT_EQ(a->descriptors_processed, b->descriptors_processed);
      EXPECT_EQ(a->model_elapsed_micros, b->model_elapsed_micros);
      EXPECT_EQ(a->exact, b->exact);
      ASSERT_EQ(a->neighbors.size(), b->neighbors.size());
      for (size_t i = 0; i < a->neighbors.size(); ++i) {
        EXPECT_EQ(a->neighbors[i].id, b->neighbors[i].id) << "rank " << i;
        // Bitwise equality, not almost-equal: the kernels promise it.
        EXPECT_EQ(a->neighbors[i].distance, b->neighbors[i].distance)
            << "rank " << i;
      }
    }
  }
}

TEST(SearcherTest, RangeSearchRejectsBadArguments) {
  SrTreeChunker chunker(60);
  IndexFixture fx(&chunker);
  Searcher searcher(&*fx.index, DiskCostModel());
  EXPECT_TRUE(searcher
                  .SearchRange(fx.collection.Vector(0), -0.5,
                               StopRule::Exact())
                  .status()
                  .IsInvalidArgument());
  std::vector<float> wrong(3, 0.0f);
  EXPECT_TRUE(searcher.SearchRange(wrong, 1.0, StopRule::Exact())
                  .status()
                  .IsInvalidArgument());
}

TEST(SearcherTest, ExactAcrossChunkersAgrees) {
  // Whatever the chunking, exact search must return identical distances.
  SrTreeChunker sr(70);
  RoundRobinChunker rr(70);
  IndexFixture sr_fx(&sr, 33);
  IndexFixture rr_fx(&rr, 33);
  Searcher sr_search(&*sr_fx.index, DiskCostModel());
  Searcher rr_search(&*rr_fx.index, DiskCostModel());

  Rng rng(2);
  for (int trial = 0; trial < 5; ++trial) {
    std::vector<float> query(kDescriptorDim);
    for (auto& x : query) x = static_cast<float>(rng.UniformDouble(30, 70));
    auto a = sr_search.Search(query, 8, StopRule::Exact());
    auto b = rr_search.Search(query, 8, StopRule::Exact());
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    for (size_t i = 0; i < 8; ++i) {
      EXPECT_NEAR(a->neighbors[i].distance, b->neighbors[i].distance, 1e-6);
    }
  }
}

TEST(SearcherTest, EpsilonApproximationBoundsError) {
  SrTreeChunker chunker(60);
  IndexFixture fx(&chunker);
  Searcher searcher(&*fx.index, DiskCostModel());

  Rng rng(77);
  for (int trial = 0; trial < 8; ++trial) {
    std::vector<float> query(kDescriptorDim);
    for (auto& x : query) x = static_cast<float>(rng.UniformDouble(30, 70));
    auto exact = searcher.Search(query, 10, StopRule::Exact());
    ASSERT_TRUE(exact.ok());
    for (double epsilon : {0.2, 1.0}) {
      auto approx =
          searcher.Search(query, 10, StopRule::EpsilonApproximate(epsilon));
      ASSERT_TRUE(approx.ok());
      // The exactness flag may only be claimed when every chunk was
      // scanned (then the answer is exact regardless of epsilon).
      if (approx->exact) {
        EXPECT_EQ(approx->chunks_read, fx.index->num_chunks());
      }
      // (1+eps)-guarantee: every reported distance is within (1+eps) of the
      // true distance at that rank.
      for (size_t i = 0; i < 10; ++i) {
        EXPECT_LE(approx->neighbors[i].distance,
                  (1.0 + epsilon) * exact->neighbors[i].distance + 1e-9);
      }
      // Never more work than the exact search.
      EXPECT_LE(approx->chunks_read, exact->chunks_read);
    }
  }
}

TEST(SearcherTest, ZeroEpsilonEqualsExact) {
  SrTreeChunker chunker(60);
  IndexFixture fx(&chunker);
  Searcher searcher(&*fx.index, DiskCostModel());
  const auto query = fx.collection.Vector(42);
  auto a = searcher.Search(query, 10, StopRule::Exact());
  auto b = searcher.Search(query, 10, StopRule::EpsilonApproximate(0.0));
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_TRUE(b->exact);
  EXPECT_EQ(a->chunks_read, b->chunks_read);
  for (size_t i = 0; i < 10; ++i) {
    EXPECT_EQ(a->neighbors[i].id, b->neighbors[i].id);
  }
}

TEST(SearcherTest, ApproximateIsSubsetQualityOfExact) {
  SrTreeChunker chunker(60);
  IndexFixture fx(&chunker);
  Searcher searcher(&*fx.index, DiskCostModel());
  const auto query = fx.collection.Vector(123);

  auto exact = searcher.Search(query, 10, StopRule::Exact());
  ASSERT_TRUE(exact.ok());
  auto approx = searcher.Search(query, 10, StopRule::MaxChunks(2));
  ASSERT_TRUE(approx.ok());
  // The approximate k-th distance can never beat the exact one.
  ASSERT_FALSE(approx->neighbors.empty());
  EXPECT_GE(approx->neighbors.back().distance,
            exact->neighbors.back().distance - 1e-9);
}

}  // namespace
}  // namespace qvt
