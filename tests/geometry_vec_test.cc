#include "geometry/vec.h"

#include <cmath>

#include <gtest/gtest.h>

#include "util/random.h"

namespace qvt {
namespace {

std::vector<float> RandomVector(Rng* rng, size_t dim, double scale = 10.0) {
  std::vector<float> v(dim);
  for (auto& x : v) x = static_cast<float>(rng->UniformDouble(-scale, scale));
  return v;
}

TEST(VecTest, DistanceOfIdenticalVectorsIsZero) {
  std::vector<float> a = {1, 2, 3};
  EXPECT_DOUBLE_EQ(vec::SquaredDistance(a, a), 0.0);
  EXPECT_DOUBLE_EQ(vec::Distance(a, a), 0.0);
}

TEST(VecTest, KnownDistance) {
  std::vector<float> a = {0, 0};
  std::vector<float> b = {3, 4};
  EXPECT_DOUBLE_EQ(vec::SquaredDistance(a, b), 25.0);
  EXPECT_DOUBLE_EQ(vec::Distance(a, b), 5.0);
}

TEST(VecTest, NormMatchesDistanceFromOrigin) {
  std::vector<float> v = {1, -2, 2};
  EXPECT_DOUBLE_EQ(vec::Norm(v), 3.0);
}

TEST(VecTest, AddAndScaleInPlace) {
  std::vector<float> a = {1, 2};
  std::vector<float> b = {10, 20};
  vec::AddInPlace(a, b);
  EXPECT_EQ(a[0], 11);
  EXPECT_EQ(a[1], 22);
  vec::ScaleInPlace(a, 0.5);
  EXPECT_FLOAT_EQ(a[0], 5.5f);
  EXPECT_FLOAT_EQ(a[1], 11.0f);
}

TEST(VecTest, MeanOfEmptyIsZero) {
  const auto mean = vec::Mean({}, 3);
  EXPECT_EQ(mean, (std::vector<float>{0, 0, 0}));
}

TEST(VecTest, MeanOfVectors) {
  std::vector<float> a = {0, 0};
  std::vector<float> b = {2, 4};
  std::vector<std::span<const float>> vs = {a, b};
  const auto mean = vec::Mean(vs, 2);
  EXPECT_FLOAT_EQ(mean[0], 1.0f);
  EXPECT_FLOAT_EQ(mean[1], 2.0f);
}

TEST(VecTest, WeightedMeanRespectsWeights) {
  std::vector<float> a = {0.0f};
  std::vector<float> b = {10.0f};
  const auto m = vec::WeightedMean(a, 3.0, b, 1.0);
  EXPECT_FLOAT_EQ(m[0], 2.5f);
}

class VecPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(VecPropertyTest, SymmetryAndTriangleInequality) {
  Rng rng(GetParam());
  for (int iter = 0; iter < 50; ++iter) {
    const auto a = RandomVector(&rng, 24);
    const auto b = RandomVector(&rng, 24);
    const auto c = RandomVector(&rng, 24);
    EXPECT_DOUBLE_EQ(vec::Distance(a, b), vec::Distance(b, a));
    EXPECT_LE(vec::Distance(a, c),
              vec::Distance(a, b) + vec::Distance(b, c) + 1e-9);
    EXPECT_GE(vec::Distance(a, b), 0.0);
  }
}

TEST_P(VecPropertyTest, SquaredDistanceConsistentWithDistance) {
  Rng rng(GetParam() ^ 0x1234);
  for (int iter = 0; iter < 50; ++iter) {
    const auto a = RandomVector(&rng, 24);
    const auto b = RandomVector(&rng, 24);
    EXPECT_NEAR(std::sqrt(vec::SquaredDistance(a, b)), vec::Distance(a, b),
                1e-9);
  }
}

TEST_P(VecPropertyTest, MeanMinimizesSumOfSquaredDistances) {
  Rng rng(GetParam() ^ 0x777);
  std::vector<std::vector<float>> points;
  for (int i = 0; i < 20; ++i) points.push_back(RandomVector(&rng, 8));
  std::vector<std::span<const float>> spans(points.begin(), points.end());
  const auto mean = vec::Mean(spans, 8);

  auto cost = [&](std::span<const float> center) {
    double sum = 0;
    for (const auto& p : points) sum += vec::SquaredDistance(center, p);
    return sum;
  };
  const double best = cost(mean);
  for (int trial = 0; trial < 20; ++trial) {
    auto other = mean;
    for (auto& x : other) {
      x += static_cast<float>(rng.UniformDouble(-1, 1));
    }
    EXPECT_GE(cost(other), best - 1e-6);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, VecPropertyTest,
                         ::testing::Values(1, 2, 3, 5, 8));

}  // namespace
}  // namespace qvt
