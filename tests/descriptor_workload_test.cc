#include "descriptor/workload.h"

#include <gtest/gtest.h>

#include "descriptor/generator.h"
#include "descriptor/range_analysis.h"
#include "geometry/vec.h"

namespace qvt {
namespace {

Collection TestCollection() {
  GeneratorConfig config;
  config.num_images = 40;
  config.descriptors_per_image = 30;
  config.num_modes = 8;
  config.seed = 5;
  return GenerateCollection(config);
}

TEST(RangeAnalysisTest, TrimmedRangesOnKnownData) {
  Collection c(1);
  for (int i = 0; i < 100; ++i) {
    c.Append(static_cast<DescriptorId>(i),
             std::vector<float>{static_cast<float>(i)});
  }
  const DimensionRanges ranges = ComputeTrimmedRanges(c, 0.05);
  ASSERT_EQ(ranges.dim(), 1u);
  EXPECT_FLOAT_EQ(ranges.lo[0], 5.0f);
  EXPECT_FLOAT_EQ(ranges.hi[0], 94.0f);
}

TEST(RangeAnalysisTest, ZeroTrimIsFullRange) {
  Collection c(2);
  c.Append(0, std::vector<float>{-5, 1});
  c.Append(1, std::vector<float>{10, 2});
  const DimensionRanges ranges = ComputeTrimmedRanges(c, 0.0);
  EXPECT_FLOAT_EQ(ranges.lo[0], -5.0f);
  EXPECT_FLOAT_EQ(ranges.hi[0], 10.0f);
  EXPECT_FLOAT_EQ(ranges.lo[1], 1.0f);
  EXPECT_FLOAT_EQ(ranges.hi[1], 2.0f);
}

TEST(RangeAnalysisTest, TrimDiscardsOutliers) {
  const Collection c = TestCollection();
  const DimensionRanges full = ComputeTrimmedRanges(c, 0.0);
  const DimensionRanges trimmed = ComputeTrimmedRanges(c, 0.05);
  for (size_t d = 0; d < c.dim(); ++d) {
    EXPECT_GE(trimmed.lo[d], full.lo[d]);
    EXPECT_LE(trimmed.hi[d], full.hi[d]);
  }
}

TEST(WorkloadTest, DatasetQueriesAreCollectionMembers) {
  const Collection c = TestCollection();
  Rng rng(1);
  const Workload dq = MakeDatasetQueries(c, 50, &rng);
  EXPECT_EQ(dq.name, "DQ");
  EXPECT_EQ(dq.num_queries(), 50u);

  for (size_t q = 0; q < dq.num_queries(); ++q) {
    bool found = false;
    for (size_t i = 0; i < c.size() && !found; ++i) {
      found = vec::SquaredDistance(c.Vector(i), dq.Query(q)) == 0.0;
    }
    EXPECT_TRUE(found) << "query " << q << " is not a collection member";
  }
}

TEST(WorkloadTest, DatasetQueriesAreDistinct) {
  const Collection c = TestCollection();
  Rng rng(2);
  const Workload dq = MakeDatasetQueries(c, 100, &rng);
  // Sampling is without replacement; queries should not repeat (generator
  // collisions are astronomically unlikely).
  size_t duplicate_pairs = 0;
  for (size_t a = 0; a < dq.num_queries(); ++a) {
    for (size_t b = a + 1; b < dq.num_queries(); ++b) {
      if (vec::SquaredDistance(dq.Query(a), dq.Query(b)) == 0.0) {
        ++duplicate_pairs;
      }
    }
  }
  EXPECT_EQ(duplicate_pairs, 0u);
}

TEST(WorkloadTest, SpaceQueriesStayInTrimmedRanges) {
  const Collection c = TestCollection();
  const DimensionRanges ranges = ComputeTrimmedRanges(c, 0.05);
  Rng rng(3);
  const Workload sq = MakeSpaceQueries(ranges, 80, &rng);
  EXPECT_EQ(sq.name, "SQ");
  EXPECT_EQ(sq.num_queries(), 80u);
  for (size_t q = 0; q < sq.num_queries(); ++q) {
    const auto query = sq.Query(q);
    for (size_t d = 0; d < ranges.dim(); ++d) {
      EXPECT_GE(query[d], ranges.lo[d]);
      EXPECT_LE(query[d], ranges.hi[d]);
    }
  }
}

TEST(WorkloadTest, SpaceQueriesAreDeterministicPerRngState) {
  const Collection c = TestCollection();
  const DimensionRanges ranges = ComputeTrimmedRanges(c, 0.05);
  Rng rng_a(7), rng_b(7);
  const Workload a = MakeSpaceQueries(ranges, 10, &rng_a);
  const Workload b = MakeSpaceQueries(ranges, 10, &rng_b);
  EXPECT_EQ(a.queries, b.queries);
}

}  // namespace
}  // namespace qvt
