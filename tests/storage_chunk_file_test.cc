#include "storage/chunk_file.h"

#include <gtest/gtest.h>

#include "descriptor/generator.h"

namespace qvt {
namespace {

Collection SmallCollection(size_t n = 100) {
  Collection c;
  for (size_t i = 0; i < n; ++i) {
    std::vector<float> v(kDescriptorDim, static_cast<float>(i));
    c.Append(static_cast<DescriptorId>(1000 + i), v);
  }
  return c;
}

TEST(ChunkFileTest, WriteReadRoundTrip) {
  MemEnv env;
  const Collection c = SmallCollection();
  auto writer = ChunkFileWriter::Create(&env, "chunks", kDescriptorDim);
  ASSERT_TRUE(writer.ok());

  std::vector<size_t> first = {0, 1, 2};
  std::vector<size_t> second = {50, 99};
  auto loc1 = (*writer)->AppendChunk(c, first);
  auto loc2 = (*writer)->AppendChunk(c, second);
  ASSERT_TRUE(loc1.ok());
  ASSERT_TRUE(loc2.ok());
  ASSERT_TRUE((*writer)->Close().ok());

  EXPECT_EQ(loc1->first_page, 0u);
  EXPECT_EQ(loc1->num_descriptors, 3u);
  EXPECT_EQ(loc2->first_page, loc1->num_pages);

  auto reader = ChunkFileReader::Open(&env, "chunks", kDescriptorDim);
  ASSERT_TRUE(reader.ok());
  ChunkData data;
  ASSERT_TRUE((*reader)->ReadChunk(*loc2, &data).ok());
  ASSERT_EQ(data.size(), 2u);
  EXPECT_EQ(data.ids[0], 1050u);
  EXPECT_EQ(data.ids[1], 1099u);
  EXPECT_FLOAT_EQ(data.Vector(0)[0], 50.0f);
  EXPECT_FLOAT_EQ(data.Vector(1)[23], 99.0f);
}

TEST(ChunkFileTest, ChunksArePagePadded) {
  MemEnv env;
  const Collection c = SmallCollection();
  auto writer = ChunkFileWriter::Create(&env, "chunks", kDescriptorDim);
  ASSERT_TRUE(writer.ok());

  // 3 descriptors = 300 bytes -> 1 page. 100 descriptors = 10000 bytes ->
  // 2 pages.
  std::vector<size_t> small = {0, 1, 2};
  std::vector<size_t> large(100);
  for (size_t i = 0; i < 100; ++i) large[i] = i;
  auto loc_small = (*writer)->AppendChunk(c, small);
  auto loc_large = (*writer)->AppendChunk(c, large);
  ASSERT_TRUE(loc_small.ok());
  ASSERT_TRUE(loc_large.ok());
  ASSERT_TRUE((*writer)->Close().ok());

  EXPECT_EQ(loc_small->num_pages, 1u);
  EXPECT_EQ(loc_large->num_pages, 2u);
  EXPECT_EQ(*env.GetFileSize("chunks"), 3 * kPageSize);
}

TEST(ChunkFileTest, EmptyChunkRejected) {
  MemEnv env;
  const Collection c = SmallCollection();
  auto writer = ChunkFileWriter::Create(&env, "chunks", kDescriptorDim);
  ASSERT_TRUE(writer.ok());
  EXPECT_TRUE(
      (*writer)->AppendChunk(c, std::vector<size_t>{}).status()
          .IsInvalidArgument());
}

TEST(ChunkFileTest, WriteAfterCloseFails) {
  MemEnv env;
  const Collection c = SmallCollection();
  auto writer = ChunkFileWriter::Create(&env, "chunks", kDescriptorDim);
  ASSERT_TRUE(writer.ok());
  ASSERT_TRUE((*writer)->Close().ok());
  std::vector<size_t> positions = {0};
  EXPECT_TRUE((*writer)->AppendChunk(c, positions).status()
                  .IsFailedPrecondition());
}

TEST(ChunkFileTest, ReaderRejectsUnalignedFile) {
  MemEnv env;
  std::vector<uint8_t> bytes(kPageSize + 17, 0);
  ASSERT_TRUE(WriteFileBytes(&env, "bad", bytes.data(), bytes.size()).ok());
  EXPECT_TRUE(ChunkFileReader::Open(&env, "bad", kDescriptorDim)
                  .status()
                  .IsCorruption());
}

TEST(ChunkFileTest, ReadBeyondFileFails) {
  MemEnv env;
  const Collection c = SmallCollection();
  auto writer = ChunkFileWriter::Create(&env, "chunks", kDescriptorDim);
  ASSERT_TRUE(writer.ok());
  std::vector<size_t> positions = {0};
  ASSERT_TRUE((*writer)->AppendChunk(c, positions).ok());
  ASSERT_TRUE((*writer)->Close().ok());

  auto reader = ChunkFileReader::Open(&env, "chunks", kDescriptorDim);
  ASSERT_TRUE(reader.ok());
  ChunkLocation bogus{5, 1, 1};
  ChunkData data;
  EXPECT_FALSE((*reader)->ReadChunk(bogus, &data).ok());
}

TEST(ChunkFileTest, CorruptLocationPayloadRejected) {
  MemEnv env;
  const Collection c = SmallCollection();
  auto writer = ChunkFileWriter::Create(&env, "chunks", kDescriptorDim);
  ASSERT_TRUE(writer.ok());
  std::vector<size_t> positions = {0};
  ASSERT_TRUE((*writer)->AppendChunk(c, positions).ok());
  ASSERT_TRUE((*writer)->Close().ok());

  auto reader = ChunkFileReader::Open(&env, "chunks", kDescriptorDim);
  ASSERT_TRUE(reader.ok());
  // Claims 200 descriptors in one page: 20000 bytes > 8192.
  ChunkLocation bogus{0, 1, 200};
  ChunkData data;
  EXPECT_TRUE((*reader)->ReadChunk(bogus, &data).IsCorruption());
}

TEST(ChunkFileTest, AppendChunkDataVariant) {
  MemEnv env;
  auto writer = ChunkFileWriter::Create(&env, "chunks", 4);
  ASSERT_TRUE(writer.ok());
  ChunkData chunk;
  chunk.dim = 4;
  chunk.ids = {5, 6};
  chunk.values = {1, 2, 3, 4, 5, 6, 7, 8};
  auto loc = (*writer)->AppendChunk(chunk);
  ASSERT_TRUE(loc.ok());
  ASSERT_TRUE((*writer)->Close().ok());

  auto reader = ChunkFileReader::Open(&env, "chunks", 4);
  ASSERT_TRUE(reader.ok());
  ChunkData out;
  ASSERT_TRUE((*reader)->ReadChunk(*loc, &out).ok());
  EXPECT_EQ(out.ids, chunk.ids);
  EXPECT_EQ(out.values, chunk.values);
}

}  // namespace
}  // namespace qvt
