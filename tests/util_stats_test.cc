#include "util/stats.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <thread>
#include <vector>

namespace qvt {
namespace {

TEST(SampleStatsTest, BasicMoments) {
  SampleStats stats;
  for (double v : {1.0, 2.0, 3.0, 4.0}) stats.Add(v);
  EXPECT_EQ(stats.count(), 4u);
  EXPECT_DOUBLE_EQ(stats.Sum(), 10.0);
  EXPECT_DOUBLE_EQ(stats.Mean(), 2.5);
  EXPECT_DOUBLE_EQ(stats.Min(), 1.0);
  EXPECT_DOUBLE_EQ(stats.Max(), 4.0);
  EXPECT_NEAR(stats.StdDev(), 1.2909944, 1e-6);
}

TEST(SampleStatsTest, EmptyMeanIsZero) {
  SampleStats stats;
  EXPECT_EQ(stats.Mean(), 0.0);
  EXPECT_EQ(stats.StdDev(), 0.0);
}

TEST(SampleStatsTest, SingleSampleStdDevZero) {
  SampleStats stats;
  stats.Add(7.0);
  EXPECT_EQ(stats.StdDev(), 0.0);
}

TEST(SampleStatsTest, PercentileInterpolates) {
  SampleStats stats;
  for (double v : {10.0, 20.0, 30.0, 40.0, 50.0}) stats.Add(v);
  EXPECT_DOUBLE_EQ(stats.Percentile(0), 10.0);
  EXPECT_DOUBLE_EQ(stats.Percentile(100), 50.0);
  EXPECT_DOUBLE_EQ(stats.Percentile(50), 30.0);
  EXPECT_DOUBLE_EQ(stats.Percentile(25), 20.0);
  EXPECT_DOUBLE_EQ(stats.Percentile(12.5), 15.0);
}

TEST(SampleStatsTest, PercentileAfterMoreAdds) {
  SampleStats stats;
  stats.Add(3.0);
  EXPECT_DOUBLE_EQ(stats.Percentile(50), 3.0);
  stats.Add(1.0);  // invalidates the sort
  EXPECT_DOUBLE_EQ(stats.Percentile(0), 1.0);
}

TEST(SampleStatsTest, EmptyOrderStatisticsAreNaN) {
  const SampleStats stats;
  EXPECT_TRUE(std::isnan(stats.Min()));
  EXPECT_TRUE(std::isnan(stats.Max()));
  EXPECT_TRUE(std::isnan(stats.Percentile(50)));
}

TEST(SampleStatsTest, PercentileClampsOutOfRangeP) {
  SampleStats stats;
  for (double v : {10.0, 20.0, 30.0}) stats.Add(v);
  EXPECT_DOUBLE_EQ(stats.Percentile(-5), 10.0);
  EXPECT_DOUBLE_EQ(stats.Percentile(250), 30.0);
  EXPECT_TRUE(std::isnan(stats.Percentile(std::nan(""))));
}

// The convention contract: linear interpolation (NIST C=1), never
// nearest-rank. Under nearest-rank, n = 10 would return max for every
// p > 90 — exactly the failure mode that made small-batch p99 useless.
TEST(SampleStatsTest, PercentileIsLinearInterpolationNotNearestRank) {
  SampleStats stats;
  for (int i = 1; i <= 10; ++i) stats.Add(static_cast<double>(i));
  // rank = p/100 * (n-1): p99 -> 8.91 -> 9 + 0.91 * (10 - 9).
  EXPECT_NEAR(stats.Percentile(99), 9.91, 1e-9);
  EXPECT_LT(stats.Percentile(99), stats.Max());
  EXPECT_NEAR(stats.Percentile(95), 9.55, 1e-9);
}

TEST(SampleStatsTest, TinySamplesAreWellDefined) {
  SampleStats one;
  one.Add(42.0);
  // n == 1: every percentile is the sample.
  EXPECT_DOUBLE_EQ(one.Percentile(0), 42.0);
  EXPECT_DOUBLE_EQ(one.Percentile(50), 42.0);
  EXPECT_DOUBLE_EQ(one.Percentile(99), 42.0);

  SampleStats two;
  two.Add(10.0);
  two.Add(20.0);
  // n == 2: interpolate; p99 is close to but below max.
  EXPECT_DOUBLE_EQ(two.Percentile(50), 15.0);
  EXPECT_NEAR(two.Percentile(99), 19.9, 1e-9);
  EXPECT_LT(two.Percentile(99), two.Max());
}

// Regression test for a data race: Percentile() used to sort the sample
// buffer in place through `mutable` members, so concurrent const readers of
// one shared SampleStats raced (caught by TSan). Every const accessor must
// now be a pure read. Raw threads gated on one atomic flag, not a pool: a
// task queue's mutex would insert happens-before edges between the readers
// and hide the old race from TSan on machines that serialize the threads.
TEST(SampleStatsTest, ConcurrentConstReadersAreRaceFree) {
  SampleStats stats;
  // Descending inserts so the old lazy sort would have had real work to do.
  for (int i = 1024; i > 0; --i) stats.Add(static_cast<double>(i));
  const SampleStats& shared = stats;

  constexpr size_t kThreads = 8;
  std::atomic<bool> start{false};
  std::vector<std::thread> readers;
  readers.reserve(kThreads);
  for (size_t t = 0; t < kThreads; ++t) {
    readers.emplace_back([&shared, &start, t] {
      while (!start.load(std::memory_order_acquire)) {
      }
      for (int round = 0; round < 50; ++round) {
        const double p = static_cast<double>((t * 13 + round) % 101);
        EXPECT_GE(shared.Percentile(p), 1.0);
        EXPECT_EQ(shared.Min(), 1.0);
        EXPECT_EQ(shared.Max(), 1024.0);
        EXPECT_DOUBLE_EQ(shared.Mean(), 512.5);
      }
    });
  }
  start.store(true, std::memory_order_release);
  for (std::thread& t : readers) t.join();
}

TEST(CountHistogramTest, BucketsValues) {
  CountHistogram hist({10, 100, 1000});
  hist.Add(5);
  hist.Add(10);   // [10, 100)
  hist.Add(99);
  hist.Add(5000);  // overflow
  EXPECT_EQ(hist.total(), 4u);
  EXPECT_EQ(hist.num_buckets(), 4u);
  EXPECT_EQ(hist.bucket_count(0), 1u);
  EXPECT_EQ(hist.bucket_count(1), 2u);
  EXPECT_EQ(hist.bucket_count(2), 0u);
  EXPECT_EQ(hist.bucket_count(3), 1u);
}

TEST(CountHistogramTest, BoundsReported) {
  CountHistogram hist({8, 64});
  EXPECT_EQ(hist.bucket_upper_bound(0), 8u);
  EXPECT_EQ(hist.bucket_upper_bound(1), 64u);
  EXPECT_EQ(hist.bucket_upper_bound(2), UINT64_MAX);
}

}  // namespace
}  // namespace qvt
