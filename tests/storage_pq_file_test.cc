#include "storage/pq_file.h"

#include <cstring>
#include <string>
#include <vector>

#include <gtest/gtest.h>

namespace qvt {
namespace {

/// A valid little fixture: dim 24, m 8 (sub_dim 3), ksub 4, three vectors.
struct Fixture {
  size_t dim = 24;
  size_t m = 8;
  size_t ksub = 4;
  std::vector<float> codebooks;
  std::vector<uint8_t> codes;
  std::vector<uint32_t> ids;

  Fixture() {
    codebooks.resize(m * ksub * (dim / m));
    for (size_t j = 0; j < codebooks.size(); ++j) {
      codebooks[j] = 0.25f * static_cast<float>(j % 17) - 1.0f;
    }
    codes = {0, 1, 2, 3, 0, 1, 2, 3,  //
             3, 2, 1, 0, 3, 2, 1, 0,  //
             1, 1, 1, 1, 2, 2, 2, 2};
    ids = {7, 42, 1000};
  }

  Status Write(Env* env, const std::string& path) const {
    return WritePqFile(env, path, dim, m, ksub, codebooks, codes, ids);
  }
};

std::vector<uint8_t> FileBytes(MemEnv* env, const std::string& path) {
  auto bytes = ReadFileBytes(env, path);
  EXPECT_TRUE(bytes.ok());
  return std::move(bytes).value();
}

void PutBytes(MemEnv* env, const std::string& path,
              const std::vector<uint8_t>& bytes) {
  ASSERT_TRUE(WriteFileBytes(env, path, bytes.data(), bytes.size()).ok());
}

TEST(PqFileTest, RoundTripBothOpenModes) {
  MemEnv env;
  const Fixture fx;
  ASSERT_TRUE(fx.Write(&env, "pqc").ok());
  for (const bool mapped : {false, true}) {
    SCOPED_TRACE(mapped);
    auto view = OpenPqFile(&env, "pqc", 24, mapped);
    ASSERT_TRUE(view.ok()) << view.status().message();
    EXPECT_EQ(view->dim(), 24u);
    EXPECT_EQ(view->m(), 8u);
    EXPECT_EQ(view->ksub(), 4u);
    EXPECT_EQ(view->sub_dim(), 3u);
    EXPECT_EQ(view->num_vectors(), 3u);
    ASSERT_EQ(view->codebooks().size(), fx.codebooks.size());
    EXPECT_EQ(0, std::memcmp(view->codebooks().data(), fx.codebooks.data(),
                             fx.codebooks.size() * sizeof(float)));
    ASSERT_EQ(view->codes().size(), fx.codes.size());
    EXPECT_EQ(0, std::memcmp(view->codes().data(), fx.codes.data(),
                             fx.codes.size()));
    ASSERT_EQ(view->ids().size(), 3u);
    EXPECT_EQ(view->ids()[2], 1000u);
    EXPECT_TRUE(view->VerifyCrc().ok());
    EXPECT_TRUE(view->ValidateEntries().ok());
  }
}

TEST(PqFileTest, HeaderDeclaresAlignedSections) {
  MemEnv env;
  const Fixture fx;
  ASSERT_TRUE(fx.Write(&env, "pqc").ok());
  auto view = OpenPqFile(&env, "pqc", 24, /*mapped=*/false);
  ASSERT_TRUE(view.ok());
  const PqFileHeader& h = view->header();
  EXPECT_EQ(h.version, kPqFormatVersion);
  EXPECT_EQ(h.codebooks_off % kSectionAlignment, 0u);
  EXPECT_EQ(h.codes_off % kSectionAlignment, 0u);
  EXPECT_EQ(h.ids_off % kSectionAlignment, 0u);
  EXPECT_EQ(h.footer_off + kFormatFooterBytes, *env.GetFileSize("pqc"));
  // The code matrix base is aligned for the SIMD kernel contract.
  EXPECT_EQ(
      reinterpret_cast<uintptr_t>(view->codes().data()) % 32, 0u);
}

TEST(PqFileTest, BadShapesRejectedAtWrite) {
  MemEnv env;
  Fixture fx;
  EXPECT_TRUE(WritePqFile(&env, "pqc", 24, 5, 4, fx.codebooks, fx.codes,
                          fx.ids)
                  .IsInvalidArgument());  // m does not divide dim
  EXPECT_TRUE(WritePqFile(&env, "pqc", 24, 8, 257, fx.codebooks, fx.codes,
                          fx.ids)
                  .IsInvalidArgument());
  EXPECT_TRUE(
      WritePqFile(&env, "pqc", 24, 8, 4, fx.codebooks, fx.codes, {})
          .IsInvalidArgument());  // zero vectors
  EXPECT_TRUE(WritePqFile(&env, "pqc", 24, 8, 4,
                          std::span<const float>(fx.codebooks.data(), 5),
                          fx.codes, fx.ids)
                  .IsInvalidArgument());  // codebook size mismatch
  EXPECT_TRUE(WritePqFile(&env, "pqc", 24, 8, 4, fx.codebooks,
                          std::span<const uint8_t>(fx.codes.data(), 7),
                          fx.ids)
                  .IsInvalidArgument());  // code size mismatch
}

TEST(PqFileTest, FlippedMagicRejectedWithPathAndOffset) {
  MemEnv env;
  const Fixture fx;
  ASSERT_TRUE(fx.Write(&env, "pqc").ok());
  std::vector<uint8_t> bytes = FileBytes(&env, "pqc");
  bytes[0] ^= 0xff;
  PutBytes(&env, "pqc", bytes);

  const Status s = OpenPqFile(&env, "pqc", 24, /*mapped=*/false).status();
  EXPECT_TRUE(s.IsCorruption());
  EXPECT_NE(s.ToString().find("pqc"), std::string::npos);
  EXPECT_NE(s.ToString().find("offset 0"), std::string::npos);
  EXPECT_TRUE(
      OpenPqFile(&env, "pqc", 24, /*mapped=*/true).status().IsCorruption());
}

TEST(PqFileTest, TruncationRejected) {
  MemEnv env;
  const Fixture fx;
  ASSERT_TRUE(fx.Write(&env, "pqc").ok());
  const std::vector<uint8_t> bytes = FileBytes(&env, "pqc");
  // Chop mid-way through the code section.
  std::vector<uint8_t> truncated(bytes.begin(),
                                 bytes.begin() + bytes.size() / 2);
  PutBytes(&env, "pqc", truncated);
  EXPECT_TRUE(
      OpenPqFile(&env, "pqc", 24, /*mapped=*/false).status().IsCorruption());
  EXPECT_TRUE(
      OpenPqFile(&env, "pqc", 24, /*mapped=*/true).status().IsCorruption());

  // Shorter than even a header.
  std::vector<uint8_t> stub(bytes.begin(), bytes.begin() + 20);
  PutBytes(&env, "pqc", stub);
  EXPECT_TRUE(
      OpenPqFile(&env, "pqc", 24, /*mapped=*/false).status().IsCorruption());
}

TEST(PqFileTest, CorruptedCrcRejectedByDeserializingOpenOnly) {
  MemEnv env;
  const Fixture fx;
  ASSERT_TRUE(fx.Write(&env, "pqc").ok());
  std::vector<uint8_t> bytes = FileBytes(&env, "pqc");
  bytes[kFormatHeaderBytes + 1] ^= 0x20;  // flip one codebook payload bit
  PutBytes(&env, "pqc", bytes);

  const Status s = OpenPqFile(&env, "pqc", 24, /*mapped=*/false).status();
  EXPECT_TRUE(s.IsCorruption());
  EXPECT_NE(s.ToString().find("crc"), std::string::npos);

  // The mapped open is O(1) by contract — no CRC pass — so it admits the
  // flip; VerifyCrc is the explicit check fsck runs.
  auto mapped = OpenPqFile(&env, "pqc", 24, /*mapped=*/true);
  ASSERT_TRUE(mapped.ok());
  EXPECT_TRUE(mapped->VerifyCrc().IsCorruption());
}

TEST(PqFileTest, DimMismatchRejected) {
  MemEnv env;
  const Fixture fx;
  ASSERT_TRUE(fx.Write(&env, "pqc").ok());
  const Status s = OpenPqFile(&env, "pqc", 16, /*mapped=*/false).status();
  EXPECT_TRUE(s.IsCorruption());
  EXPECT_NE(s.ToString().find("dim"), std::string::npos);
}

TEST(PqFileTest, OutOfRangeCodeRejected) {
  MemEnv env;
  const Fixture fx;
  ASSERT_TRUE(fx.Write(&env, "pqc").ok());
  auto view = OpenPqFile(&env, "pqc", 24, /*mapped=*/false);
  ASSERT_TRUE(view.ok());
  // Plant a code >= ksub and refresh the CRC so only the semantic check can
  // object.
  std::vector<uint8_t> bytes = FileBytes(&env, "pqc");
  bytes[view->header().codes_off] = 200;
  const uint32_t crc = Crc32(bytes.data(), view->header().footer_off);
  std::memcpy(bytes.data() + view->header().footer_off, &crc, sizeof(crc));
  PutBytes(&env, "pqc", bytes);

  const Status s = OpenPqFile(&env, "pqc", 24, /*mapped=*/false).status();
  EXPECT_TRUE(s.IsCorruption());
  EXPECT_NE(s.ToString().find("out of range"), std::string::npos);
}

TEST(PqFileTest, GarbageFileRejected) {
  MemEnv env;
  std::vector<uint8_t> garbage(4096);
  for (size_t i = 0; i < garbage.size(); ++i) {
    garbage[i] = static_cast<uint8_t>(i * 37 + 11);
  }
  PutBytes(&env, "pqc", garbage);
  EXPECT_TRUE(
      OpenPqFile(&env, "pqc", 24, /*mapped=*/false).status().IsCorruption());
  EXPECT_TRUE(
      OpenPqFile(&env, "pqc", 24, /*mapped=*/true).status().IsCorruption());
}

}  // namespace
}  // namespace qvt
