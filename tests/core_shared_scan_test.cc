// Chunk-major batched execution (shared chunk scans): the bit-identity
// sweep of the acceptance bar — batched-vs-per-query results must be
// byte-identical for every registered method, stop rule, SIMD backend, and
// thread count — plus detach semantics, duplicate-query dedup, the
// QVT_SHARED_SCAN escape hatch, the fused multi-query kernels against
// their single-query references, and the coalescing ledger.

#include <cstdlib>
#include <cstring>
#include <optional>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "cluster/srtree_chunker.h"
#include "core/batch_searcher.h"
#include "core/chunk_index.h"
#include "core/search_method.h"
#include "core/searcher.h"
#include "descriptor/generator.h"
#include "descriptor/workload.h"
#include "geometry/kernels.h"
#include "storage/chunk_cache.h"
#include "util/logging.h"
#include "util/random.h"

namespace qvt {
namespace {

struct SharedScanFixture {
  MemEnv env;
  Collection collection;
  std::optional<ChunkIndex> index;
  Workload workload;

  explicit SharedScanFixture(size_t num_queries = 60, uint64_t seed = 33) {
    // Every test here picks shared-vs-query-major explicitly through the
    // BatchSearcher constructor; an inherited QVT_SHARED_SCAN (e.g. the CI
    // escape-hatch ctest run) must not override that choice.
    unsetenv("QVT_SHARED_SCAN");
    GeneratorConfig config;
    config.num_images = 40;
    config.descriptors_per_image = 25;
    config.num_modes = 8;
    config.seed = seed;
    collection = GenerateCollection(config);
    SrTreeChunker chunker(80);
    auto chunking = chunker.FormChunks(collection);
    QVT_CHECK(chunking.ok());
    auto built = ChunkIndex::Build(collection, *chunking, &env,
                                   ChunkIndexPaths::ForBase("idx"));
    QVT_CHECK(built.ok());
    index.emplace(std::move(built).value());
    Rng rng(seed + 1);
    workload = MakeDatasetQueries(collection, num_queries, &rng);
  }

  MethodContext Context() const {
    MethodContext context;
    context.collection = &collection;
    context.index = &*index;
    context.env = const_cast<MemEnv*>(&env);
    return context;
  }
};

/// Byte-identical comparison of two batches: neighbors (ids and the raw
/// bits of every distance) and the deterministic telemetry counters.
/// `compare_cost` additionally pins the cache-verdict-dependent figures
/// (model clocks, bytes/pages read) — exclude them when one side runs a
/// shared ChunkCache, whose verdicts are schedule-dependent by contract.
void ExpectByteIdentical(const std::vector<MethodResult>& shared,
                         const std::vector<MethodResult>& reference,
                         const std::string& label,
                         bool compare_cost = true) {
  ASSERT_EQ(shared.size(), reference.size()) << label;
  for (size_t q = 0; q < shared.size(); ++q) {
    const QueryTelemetry& a = shared[q].telemetry;
    const QueryTelemetry& b = reference[q].telemetry;
    EXPECT_EQ(a.chunks_read, b.chunks_read) << label << " query " << q;
    EXPECT_EQ(a.descriptors_scanned, b.descriptors_scanned)
        << label << " query " << q;
    EXPECT_EQ(a.candidates_examined, b.candidates_examined)
        << label << " query " << q;
    EXPECT_EQ(a.max_probe_rows, b.max_probe_rows) << label << " query " << q;
    EXPECT_EQ(a.exact, b.exact) << label << " query " << q;
    if (compare_cost) {
      EXPECT_EQ(a.model_micros, b.model_micros) << label << " query " << q;
      EXPECT_EQ(a.model_overlapped_micros, b.model_overlapped_micros)
          << label << " query " << q;
      EXPECT_EQ(a.bytes_read, b.bytes_read) << label << " query " << q;
    }
    ASSERT_EQ(shared[q].neighbors.size(), reference[q].neighbors.size())
        << label << " query " << q;
    for (size_t i = 0; i < shared[q].neighbors.size(); ++i) {
      EXPECT_EQ(shared[q].neighbors[i].id, reference[q].neighbors[i].id)
          << label << " query " << q << " rank " << i;
      EXPECT_EQ(std::memcmp(&shared[q].neighbors[i].distance,
                            &reference[q].neighbors[i].distance,
                            sizeof(double)),
                0)
          << label << " query " << q << " rank " << i;
    }
  }
}

struct BackendGuard {
  ~BackendGuard() { kernels::ResetBackendForTesting(); }
};

std::vector<kernels::Backend> SupportedBackends() {
  std::vector<kernels::Backend> backends;
  for (const kernels::Backend b :
       {kernels::Backend::kScalar, kernels::Backend::kSse2,
        kernels::Backend::kAvx2, kernels::Backend::kNeon}) {
    if (kernels::BackendSupported(b)) backends.push_back(b);
  }
  return backends;
}

// --- The acceptance-bar sweep: chunked, every stop rule x backend x -------
// --- thread count, shared vs the query-major per-query loop. --------------

TEST(SharedScanTest, ChunkedBitIdenticalAcrossStopRulesBackendsThreads) {
  SharedScanFixture fx(/*num_queries=*/60);
  Searcher searcher(&*fx.index, DiskCostModel());

  // A mid-scan time budget: half the exact model time of the first query,
  // so some queries detach mid-order while others run longer.
  auto probe = searcher.Search(fx.workload.Query(0), 10, StopRule::Exact());
  ASSERT_TRUE(probe.ok());
  const int64_t budget = probe->model_elapsed_micros / 2;
  ASSERT_GT(budget, 0);

  const struct {
    const char* name;
    StopRule rule;
  } rules[] = {
      {"exact", StopRule::Exact()},
      {"epsilon", StopRule::EpsilonApproximate(0.1)},
      {"max-chunks", StopRule::MaxChunks(3)},
      {"time-budget", StopRule::TimeBudget(budget)},
  };

  BackendGuard guard;
  for (const kernels::Backend backend : SupportedBackends()) {
    kernels::SetBackendForTesting(backend);
    for (const auto& r : rules) {
      BatchSearcher query_major(&searcher, 1, /*shared_scan=*/false);
      auto reference = query_major.SearchAll(fx.workload, 10, r.rule);
      ASSERT_TRUE(reference.ok());
      EXPECT_FALSE(reference->shared.enabled);

      for (const size_t threads : {size_t{1}, size_t{3}}) {
        BatchSearcher chunk_major(&searcher, threads);
        auto batch = chunk_major.SearchAll(fx.workload, 10, r.rule);
        ASSERT_TRUE(batch.ok());
        const std::string label =
            std::string(kernels::BackendName(backend)) + "/" + r.name + "/t" +
            std::to_string(threads);
        EXPECT_TRUE(batch->shared.enabled) << label;
        ExpectByteIdentical(batch->results, reference->results, label);
        // Every (chunk, query) pair the queries demanded was served.
        EXPECT_EQ(batch->shared.chunk_attachments,
                  batch->totals.chunks_read)
            << label;
        EXPECT_LE(batch->shared.chunk_fetches,
                  batch->shared.chunk_attachments)
            << label;
      }
    }
  }
}

// Exact stops fire at different rounds for different queries (mid-scan
// detach): chunks_read must vary across the batch while results stay
// identical, and the schedule must actually coalesce fetches.
TEST(SharedScanTest, ExactStopsDetachQueriesMidSchedule) {
  SharedScanFixture fx(/*num_queries=*/60);
  Searcher searcher(&*fx.index, DiskCostModel());
  BatchSearcher chunk_major(&searcher, 1);
  auto batch = chunk_major.SearchAll(fx.workload, 5, StopRule::Exact());
  ASSERT_TRUE(batch.ok());
  ASSERT_TRUE(batch->shared.enabled);

  uint64_t min_chunks = UINT64_MAX;
  uint64_t max_chunks = 0;
  for (const MethodResult& r : batch->results) {
    min_chunks = std::min(min_chunks, r.telemetry.chunks_read);
    max_chunks = std::max(max_chunks, r.telemetry.chunks_read);
  }
  EXPECT_LT(min_chunks, max_chunks)
      << "expected stop-rule detach at different rounds";
  EXPECT_GT(batch->shared.chunks_coalesced(), 0u);
  EXPECT_GT(batch->shared.rows_scan_shared, 0u);
  // Histogram totals the schedule's chunk passes.
  uint64_t histogram_total = 0;
  for (size_t b = 0; b < SharedScanStats::kHistogramBuckets; ++b) {
    histogram_total += batch->shared.coscan_histogram[b];
  }
  EXPECT_EQ(histogram_total, batch->shared.chunk_fetches);
}

// A shared ChunkCache: neighbors and chunks_read stay pinned (only cache
// verdicts and hence modeled charges may shift, as between thread counts),
// and each query's verdicts balance.
TEST(SharedScanTest, SharedCacheKeepsAnswersIdentical) {
  SharedScanFixture fx(/*num_queries=*/60);
  Searcher plain(&*fx.index, DiskCostModel());
  ChunkCache cache(256, /*num_shards=*/4);
  Searcher cached(&*fx.index, DiskCostModel(), &cache);

  BatchSearcher query_major(&plain, 1, /*shared_scan=*/false);
  auto reference = query_major.SearchAll(fx.workload, 10, StopRule::Exact());
  ASSERT_TRUE(reference.ok());

  BatchSearcher chunk_major(&cached, 3);
  auto batch = chunk_major.SearchAll(fx.workload, 10, StopRule::Exact());
  ASSERT_TRUE(batch.ok());
  ASSERT_TRUE(batch->shared.enabled);
  ExpectByteIdentical(batch->results, reference->results, "cached",
                      /*compare_cost=*/false);
  for (size_t q = 0; q < batch->results.size(); ++q) {
    const QueryTelemetry& t = batch->results[q].telemetry;
    EXPECT_EQ(t.cache_hits + t.cache_misses, t.chunks_read) << "query " << q;
  }
}

// The merged prefetch streams report through the shared ledger and the
// batch totals; the ledger balances and per-query counters stay zero.
TEST(SharedScanTest, MergedPrefetchStreamsReportThroughSharedLedger) {
  SharedScanFixture fx(/*num_queries=*/40);
  PrefetcherOptions deep;
  deep.depth = 4;
  Searcher pipelined(&*fx.index, DiskCostModel(), nullptr, deep);
  ASSERT_NE(pipelined.prefetcher(), nullptr);

  BatchSearcher chunk_major(&pipelined, 1);
  auto batch = chunk_major.SearchAll(fx.workload, 10, StopRule::Exact());
  ASSERT_TRUE(batch.ok());
  ASSERT_TRUE(batch->shared.enabled);
  const PrefetchStats& p = batch->shared.prefetch;
  EXPECT_GT(p.issued, 0u);
  EXPECT_EQ(p.issued, p.used + p.wasted + p.cancelled);
  EXPECT_EQ(batch->totals.prefetch.issued, p.issued);
  for (const MethodResult& r : batch->results) {
    EXPECT_EQ(r.telemetry.prefetch.issued, 0u);
  }
}

// --- Duplicate-query dedup ------------------------------------------------

TEST(SharedScanTest, DuplicateQueriesShareOnePlanAndScan) {
  SharedScanFixture fx(/*num_queries=*/10);
  Searcher searcher(&*fx.index, DiskCostModel());

  // A replayed-trace workload: each distinct query appears three times.
  Workload replay;
  replay.dim = fx.workload.dim;
  for (size_t copy = 0; copy < 3; ++copy) {
    replay.queries.insert(replay.queries.end(), fx.workload.queries.begin(),
                          fx.workload.queries.end());
  }
  ASSERT_EQ(replay.num_queries(), 3 * fx.workload.num_queries());

  BatchSearcher query_major(&searcher, 1, /*shared_scan=*/false);
  auto reference = query_major.SearchAll(replay, 10, StopRule::Exact());
  ASSERT_TRUE(reference.ok());

  BatchSearcher chunk_major(&searcher, 1);
  auto batch = chunk_major.SearchAll(replay, 10, StopRule::Exact());
  ASSERT_TRUE(batch.ok());
  ASSERT_TRUE(batch->shared.enabled);
  EXPECT_EQ(batch->shared.dedup_hits, 2 * fx.workload.num_queries());
  EXPECT_EQ(batch->shared.queries, fx.workload.num_queries());
  // Followers copy the leader's record verbatim — results and telemetry
  // are still per-slot identical to the per-query loop.
  ExpectByteIdentical(batch->results, reference->results, "dedup");
}

// --- The QVT_SHARED_SCAN escape hatch and the constructor switch ----------

TEST(SharedScanTest, EnvEscapeHatchForcesQueryMajor) {
  SharedScanFixture fx(/*num_queries=*/20);
  Searcher searcher(&*fx.index, DiskCostModel());
  BatchSearcher batch_searcher(&searcher, 1);  // shared on by default

  ASSERT_EQ(setenv("QVT_SHARED_SCAN", "0", 1), 0);
  auto disabled = batch_searcher.SearchAll(fx.workload, 10, StopRule::Exact());
  ASSERT_EQ(unsetenv("QVT_SHARED_SCAN"), 0);
  ASSERT_TRUE(disabled.ok());
  EXPECT_FALSE(disabled->shared.enabled);
  EXPECT_EQ(disabled->shared.chunk_fetches, 0u);

  auto enabled = batch_searcher.SearchAll(fx.workload, 10, StopRule::Exact());
  ASSERT_TRUE(enabled.ok());
  EXPECT_TRUE(enabled->shared.enabled);
  ExpectByteIdentical(enabled->results, disabled->results, "escape-hatch");
}

TEST(SharedScanTest, ConstructorSwitchDisablesSharedScan) {
  SharedScanFixture fx(/*num_queries=*/10);
  Searcher searcher(&*fx.index, DiskCostModel());
  BatchSearcher off(&searcher, 4, /*shared_scan=*/false);
  auto batch = off.SearchAll(fx.workload, 5, StopRule::Exact());
  ASSERT_TRUE(batch.ok());
  EXPECT_FALSE(batch->shared.enabled);
}

// --- Every registered method: shared batches must equal query-major -------
// --- batches whether or not the method implements SearchShared. -----------

TEST(SharedScanTest, AllRegisteredMethodsMatchQueryMajorBatches) {
  SharedScanFixture fx(/*num_queries=*/24);
  for (const MethodInfo& info : MethodRegistry::Global().List()) {
    auto method = MethodRegistry::Global().Create(info.name, fx.Context());
    ASSERT_TRUE(method.ok()) << info.name << ": " << method.status().message();
    ASSERT_TRUE((*method)->Prepare().ok()) << info.name;

    BatchSearcher query_major(method->get(), 1, /*shared_scan=*/false);
    auto reference =
        query_major.SearchAll(fx.workload, 10, StopRule::Exact());
    ASSERT_TRUE(reference.ok()) << info.name;

    BatchSearcher chunk_major(method->get(), 1);
    auto batch = chunk_major.SearchAll(fx.workload, 10, StopRule::Exact());
    ASSERT_TRUE(batch.ok()) << info.name;
    EXPECT_EQ(batch->shared.enabled, (*method)->SupportsSharedScan())
        << info.name;
    ExpectByteIdentical(batch->results, reference->results, info.name);
  }
}

// pq's shared path covers all three refine shapes: chunk-file rerank
// (merged schedule), collection gather (no index), and ADC-only.
TEST(SharedScanTest, PqSharedMatchesPerQueryAcrossRerankModes) {
  SharedScanFixture fx(/*num_queries=*/24);
  const struct {
    const char* label;
    const char* params;
    bool with_index;
  } cases[] = {
      {"chunk-rerank", "rerank=32,iters=4", true},
      {"gather-rerank", "rerank=32,iters=4", false},
      {"adc-only", "rerank=0,iters=4", true},
  };
  for (const auto& c : cases) {
    MethodContext context = fx.Context();
    if (!c.with_index) context.index = nullptr;
    auto method = MethodRegistry::Global().Create("pq", context, c.params);
    ASSERT_TRUE(method.ok()) << c.label;
    ASSERT_TRUE((*method)->Prepare().ok()) << c.label;
    ASSERT_TRUE((*method)->SupportsSharedScan()) << c.label;

    BatchSearcher query_major(method->get(), 1, /*shared_scan=*/false);
    auto reference =
        query_major.SearchAll(fx.workload, 10, StopRule::Exact());
    ASSERT_TRUE(reference.ok()) << c.label;

    for (const size_t threads : {size_t{1}, size_t{3}}) {
      BatchSearcher chunk_major(method->get(), threads);
      auto batch = chunk_major.SearchAll(fx.workload, 10, StopRule::Exact());
      ASSERT_TRUE(batch.ok()) << c.label;
      EXPECT_TRUE(batch->shared.enabled) << c.label;
      EXPECT_GT(batch->shared.rows_scan_shared, 0u) << c.label;
      ExpectByteIdentical(batch->results, reference->results,
                          std::string(c.label) + "/t" +
                              std::to_string(threads));
    }
  }
}

// --- Fused multi-query kernels vs their single-query references -----------

TEST(SharedScanTest, FusedKernelsMatchSingleQueryKernelsPerBackend) {
  Rng rng(77);
  const size_t dim = 24;
  const size_t count = 300;  // not a multiple of the fused row block
  const size_t nq = 5;
  std::vector<float> base(count * dim);
  for (float& v : base) v = static_cast<float>(rng.UniformDouble(-1.0, 1.0));
  // Queries originate as floats (as in the searcher) and are widened to
  // doubles for the fused kernels — exactly the widening the single-query
  // float overloads perform, so both paths see identical values.
  std::vector<std::vector<float>> float_queries(nq);
  std::vector<std::vector<double>> queries(nq);
  std::vector<const double*> query_ptrs(nq);
  std::vector<double> thresholds(nq);
  for (size_t q = 0; q < nq; ++q) {
    float_queries[q].resize(dim);
    for (float& v : float_queries[q]) {
      v = static_cast<float>(rng.UniformDouble(-1.0, 1.0));
    }
    queries[q].assign(float_queries[q].begin(), float_queries[q].end());
    query_ptrs[q] = queries[q].data();
    // Mixed pruning pressure, +inf included.
    thresholds[q] = q == 0 ? std::numeric_limits<double>::infinity()
                           : 2.0 + static_cast<double>(q);
  }

  BackendGuard guard;
  for (const kernels::Backend backend : SupportedBackends()) {
    kernels::SetBackendForTesting(backend);
    std::vector<std::vector<double>> fused(nq), single(nq);
    std::vector<double*> outs(nq);
    for (size_t q = 0; q < nq; ++q) {
      fused[q].resize(count);
      single[q].resize(count);
      outs[q] = fused[q].data();
    }

    kernels::MultiQueryBatchSquaredDistance(base.data(), count, dim,
                                            query_ptrs.data(), nq,
                                            outs.data());
    for (size_t q = 0; q < nq; ++q) {
      kernels::BatchSquaredDistance(base.data(), count, dim,
                                    std::span<const double>(queries[q]),
                                    single[q].data());
      for (size_t i = 0; i < count; ++i) {
        EXPECT_EQ(std::memcmp(&fused[q][i], &single[q][i], sizeof(double)), 0)
            << kernels::BackendName(backend) << " plain q" << q << " row "
            << i;
      }
    }

    // Abandoning variant: same backend, same row pairing (the fused row
    // block is a multiple of every backend's lane group), so both the
    // completed values AND the abandon pattern must coincide.
    kernels::MultiQueryBatchSquaredDistanceAbandon(
        base.data(), count, dim, query_ptrs.data(), thresholds.data(), nq,
        outs.data());
    for (size_t q = 0; q < nq; ++q) {
      kernels::BatchSquaredDistanceAbandon(
          base.data(), count, dim,
          std::span<const float>(float_queries[q]), thresholds[q],
          single[q].data());
      for (size_t i = 0; i < count; ++i) {
        EXPECT_EQ(std::memcmp(&fused[q][i], &single[q][i], sizeof(double)), 0)
            << kernels::BackendName(backend) << " abandon q" << q << " row "
            << i;
      }
    }
  }
}

TEST(SharedScanTest, FusedAdcKernelMatchesSingleQueryAdc) {
  Rng rng(91);
  const size_t m = 8;
  const size_t ksub = 16;
  const size_t count = 300;
  const size_t nq = 4;
  std::vector<uint8_t> codes(count * m);
  for (uint8_t& c : codes) c = static_cast<uint8_t>(rng.Uniform(ksub));
  std::vector<std::vector<double>> tables(nq);
  std::vector<const double*> table_ptrs(nq);
  std::vector<double> thresholds(nq);
  for (size_t q = 0; q < nq; ++q) {
    tables[q].resize(m * ksub);
    for (double& v : tables[q]) v = rng.UniformDouble(0.0, 1.0);
    table_ptrs[q] = tables[q].data();
    thresholds[q] = q == 0 ? std::numeric_limits<double>::infinity()
                           : 2.0 + 0.5 * static_cast<double>(q);
  }

  BackendGuard guard;
  for (const kernels::Backend backend : SupportedBackends()) {
    kernels::SetBackendForTesting(backend);
    std::vector<std::vector<double>> fused(nq);
    std::vector<double*> outs(nq);
    for (size_t q = 0; q < nq; ++q) {
      fused[q].resize(count);
      outs[q] = fused[q].data();
    }
    kernels::MultiQueryAdcScanAbandon(codes.data(), count, m, ksub,
                                      table_ptrs.data(), thresholds.data(),
                                      nq, outs.data());
    for (size_t q = 0; q < nq; ++q) {
      std::vector<double> single(count);
      kernels::AdcScanAbandon(codes.data(), count, m, ksub, tables[q].data(),
                              thresholds[q], single.data());
      for (size_t i = 0; i < count; ++i) {
        EXPECT_EQ(std::memcmp(&fused[q][i], &single[i], sizeof(double)), 0)
            << kernels::BackendName(backend) << " q" << q << " row " << i;
      }
    }
  }
}

// Direct Searcher::SearchShared argument validation.
TEST(SharedScanTest, SearchSharedValidatesArguments) {
  SharedScanFixture fx(/*num_queries=*/4);
  Searcher searcher(&*fx.index, DiskCostModel());
  std::vector<std::span<const float>> queries;
  for (size_t q = 0; q < fx.workload.num_queries(); ++q) {
    queries.push_back(fx.workload.Query(q));
  }
  auto bad_k = searcher.SearchShared(queries, 0, StopRule::Exact());
  EXPECT_TRUE(bad_k.status().IsInvalidArgument());

  const std::vector<float> short_query(3, 0.0f);
  std::vector<std::span<const float>> mixed = queries;
  mixed.push_back(short_query);
  auto bad_dim = searcher.SearchShared(mixed, 5, StopRule::Exact());
  EXPECT_TRUE(bad_dim.status().IsInvalidArgument());
}

}  // namespace
}  // namespace qvt
