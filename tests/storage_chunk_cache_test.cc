#include "storage/chunk_cache.h"

#include <gtest/gtest.h>

#include "cluster/srtree_chunker.h"
#include "core/chunk_index.h"
#include "core/searcher.h"
#include "descriptor/generator.h"
#include "util/logging.h"

namespace qvt {
namespace {

ChunkData MakeChunk(size_t n, DescriptorId first_id) {
  ChunkData chunk;
  chunk.dim = 4;
  for (size_t i = 0; i < n; ++i) {
    chunk.ids.push_back(first_id + static_cast<DescriptorId>(i));
    for (size_t d = 0; d < 4; ++d) {
      chunk.values.push_back(static_cast<float>(i + d));
    }
  }
  return chunk;
}

TEST(ChunkCacheTest, MissThenHit) {
  ChunkCache cache(10);
  EXPECT_EQ(cache.Get(1), nullptr);
  cache.Put(1, MakeChunk(3, 100), 2);
  const ChunkData* hit = cache.Get(1);
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(hit->ids[0], 100u);
  EXPECT_EQ(cache.stats().hits, 1u);
  EXPECT_EQ(cache.stats().misses, 1u);
  EXPECT_EQ(cache.used_pages(), 2u);
}

TEST(ChunkCacheTest, EvictsLeastRecentlyUsed) {
  ChunkCache cache(4);
  cache.Put(1, MakeChunk(1, 0), 2);
  cache.Put(2, MakeChunk(1, 10), 2);
  ASSERT_NE(cache.Get(1), nullptr);   // 1 is now MRU
  cache.Put(3, MakeChunk(1, 20), 2);  // evicts 2
  EXPECT_NE(cache.Get(1), nullptr);
  EXPECT_EQ(cache.Get(2), nullptr);
  EXPECT_NE(cache.Get(3), nullptr);
  EXPECT_EQ(cache.stats().evictions, 1u);
  EXPECT_LE(cache.used_pages(), 4u);
}

TEST(ChunkCacheTest, OversizedChunkNotCached) {
  ChunkCache cache(4);
  cache.Put(1, MakeChunk(1, 0), 5);
  EXPECT_EQ(cache.Get(1), nullptr);
  EXPECT_EQ(cache.used_pages(), 0u);
}

TEST(ChunkCacheTest, PutRefreshesExistingEntry) {
  ChunkCache cache(10);
  cache.Put(1, MakeChunk(1, 0), 2);
  cache.Put(1, MakeChunk(2, 50), 3);
  const ChunkData* hit = cache.Get(1);
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(hit->size(), 2u);
  EXPECT_EQ(hit->ids[0], 50u);
  EXPECT_EQ(cache.used_pages(), 3u);
  EXPECT_EQ(cache.size(), 1u);
}

TEST(ChunkCacheTest, ClearEmpties) {
  ChunkCache cache(10);
  cache.Put(1, MakeChunk(1, 0), 2);
  cache.Clear();
  EXPECT_EQ(cache.Get(1), nullptr);
  EXPECT_EQ(cache.used_pages(), 0u);
  EXPECT_EQ(cache.size(), 0u);
}

TEST(ChunkCacheTest, HitRate) {
  ChunkCache cache(10);
  cache.Put(1, MakeChunk(1, 0), 1);
  cache.Get(1);
  cache.Get(1);
  cache.Get(2);
  EXPECT_NEAR(cache.stats().HitRate(), 2.0 / 3.0, 1e-12);
}

// ---------------------------------------------------------------------------
// Searcher integration
// ---------------------------------------------------------------------------

struct SearchFixture {
  MemEnv env;
  Collection collection;
  std::optional<ChunkIndex> index;

  SearchFixture() {
    GeneratorConfig generator;
    generator.num_images = 40;
    generator.descriptors_per_image = 30;
    generator.num_modes = 8;
    generator.seed = 31;
    collection = GenerateCollection(generator);
    SrTreeChunker chunker(100);
    auto chunking = chunker.FormChunks(collection);
    QVT_CHECK(chunking.ok());
    auto built = ChunkIndex::Build(collection, *chunking, &env,
                                   ChunkIndexPaths::ForBase("idx"));
    QVT_CHECK(built.ok());
    index.emplace(std::move(built).value());
  }
};

TEST(CachedSearcherTest, RepeatedQueryHitsCache) {
  SearchFixture fx;
  ChunkCache cache(100000);
  Searcher searcher(&*fx.index, DiskCostModel(), &cache);

  auto cold = searcher.Search(fx.collection.Vector(5), 10, StopRule::Exact());
  ASSERT_TRUE(cold.ok());
  EXPECT_EQ(cache.stats().hits, 0u);
  const uint64_t misses_after_cold = cache.stats().misses;
  EXPECT_GT(misses_after_cold, 0u);

  auto warm = searcher.Search(fx.collection.Vector(5), 10, StopRule::Exact());
  ASSERT_TRUE(warm.ok());
  EXPECT_EQ(cache.stats().misses, misses_after_cold);  // all hits now
  EXPECT_GT(cache.stats().hits, 0u);

  // Identical answers, cheaper modeled time (no I/O charges on hits).
  ASSERT_EQ(cold->neighbors.size(), warm->neighbors.size());
  for (size_t i = 0; i < cold->neighbors.size(); ++i) {
    EXPECT_EQ(cold->neighbors[i].id, warm->neighbors[i].id);
  }
  EXPECT_LT(warm->model_elapsed_micros, cold->model_elapsed_micros);
}

TEST(CachedSearcherTest, CacheAgreesWithUncachedSearch) {
  SearchFixture fx;
  ChunkCache cache(64);  // tiny: constant eviction churn
  Searcher cached(&*fx.index, DiskCostModel(), &cache);
  Searcher plain(&*fx.index, DiskCostModel());

  for (size_t pos : {0u, 11u, 222u, 333u}) {
    auto a = cached.Search(fx.collection.Vector(pos), 8, StopRule::Exact());
    auto b = plain.Search(fx.collection.Vector(pos), 8, StopRule::Exact());
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    ASSERT_EQ(a->neighbors.size(), b->neighbors.size());
    for (size_t i = 0; i < a->neighbors.size(); ++i) {
      EXPECT_EQ(a->neighbors[i].id, b->neighbors[i].id);
      EXPECT_DOUBLE_EQ(a->neighbors[i].distance, b->neighbors[i].distance);
    }
  }
}

}  // namespace
}  // namespace qvt
