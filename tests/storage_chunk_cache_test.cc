#include "storage/chunk_cache.h"

#include <atomic>
#include <chrono>
#include <memory>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "cluster/srtree_chunker.h"
#include "core/chunk_index.h"
#include "core/searcher.h"
#include "descriptor/generator.h"
#include "util/logging.h"
#include "util/random.h"

namespace qvt {
namespace {

ChunkData MakeChunk(size_t n, DescriptorId first_id) {
  ChunkData chunk;
  chunk.dim = 4;
  for (size_t i = 0; i < n; ++i) {
    chunk.ids.push_back(first_id + static_cast<DescriptorId>(i));
    for (size_t d = 0; d < 4; ++d) {
      chunk.values.push_back(static_cast<float>(i + d));
    }
  }
  return chunk;
}

TEST(ChunkCacheTest, MissThenHit) {
  ChunkCache cache(10);
  EXPECT_EQ(cache.Get(1), nullptr);
  cache.Put(1, MakeChunk(3, 100), 2);
  const auto hit = cache.Get(1);
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(hit->ids[0], 100u);
  EXPECT_EQ(cache.Stats().hits, 1u);
  EXPECT_EQ(cache.Stats().misses, 1u);
  EXPECT_EQ(cache.used_pages(), 2u);
}

TEST(ChunkCacheTest, EvictsLeastRecentlyUsed) {
  ChunkCache cache(4);
  cache.Put(1, MakeChunk(1, 0), 2);
  cache.Put(2, MakeChunk(1, 10), 2);
  ASSERT_NE(cache.Get(1), nullptr);   // 1 is now MRU
  cache.Put(3, MakeChunk(1, 20), 2);  // evicts 2
  EXPECT_NE(cache.Get(1), nullptr);
  EXPECT_EQ(cache.Get(2), nullptr);
  EXPECT_NE(cache.Get(3), nullptr);
  EXPECT_EQ(cache.Stats().evictions, 1u);
  EXPECT_LE(cache.used_pages(), 4u);
}

TEST(ChunkCacheTest, OversizedChunkNotCached) {
  ChunkCache cache(4);
  cache.Put(1, MakeChunk(1, 0), 5);
  EXPECT_EQ(cache.Get(1), nullptr);
  EXPECT_EQ(cache.used_pages(), 0u);
}

TEST(ChunkCacheTest, PutRefreshesExistingEntry) {
  ChunkCache cache(10);
  cache.Put(1, MakeChunk(1, 0), 2);
  cache.Put(1, MakeChunk(2, 50), 3);
  const auto hit = cache.Get(1);
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(hit->size(), 2u);
  EXPECT_EQ(hit->ids[0], 50u);
  EXPECT_EQ(cache.used_pages(), 3u);
  EXPECT_EQ(cache.size(), 1u);
}

TEST(ChunkCacheTest, ClearEmpties) {
  ChunkCache cache(10);
  cache.Put(1, MakeChunk(1, 0), 2);
  cache.Clear();
  EXPECT_EQ(cache.Get(1), nullptr);
  EXPECT_EQ(cache.used_pages(), 0u);
  EXPECT_EQ(cache.size(), 0u);
}

TEST(ChunkCacheTest, HitRate) {
  ChunkCache cache(10);
  cache.Put(1, MakeChunk(1, 0), 1);
  cache.Get(1);
  cache.Get(1);
  cache.Get(2);
  EXPECT_NEAR(cache.Stats().HitRate(), 2.0 / 3.0, 1e-12);
}

TEST(ChunkCacheTest, EvictedChunkOutlivesEvictionWhileReferenced) {
  ChunkCache cache(2);
  cache.Put(1, MakeChunk(3, 100), 2);
  const auto held = cache.Get(1);
  ASSERT_NE(held, nullptr);
  cache.Put(2, MakeChunk(1, 200), 2);  // evicts chunk 1
  EXPECT_EQ(cache.Get(1), nullptr);
  // The outstanding reference still reads valid data.
  EXPECT_EQ(held->size(), 3u);
  EXPECT_EQ(held->ids[2], 102u);
}

TEST(ChunkCacheTest, ContainsProbesWithoutTouchingStatsOrLru) {
  ChunkCache cache(4);
  cache.Put(1, MakeChunk(1, 0), 2);
  cache.Put(2, MakeChunk(1, 10), 2);
  // Probe chunk 1 (the LRU victim candidate) many times: a Get would both
  // count hits and promote it to MRU; Contains must do neither.
  for (int i = 0; i < 5; ++i) {
    EXPECT_TRUE(cache.Contains(1));
    EXPECT_FALSE(cache.Contains(99));
  }
  EXPECT_EQ(cache.Stats().hits, 0u);
  EXPECT_EQ(cache.Stats().misses, 0u);
  cache.Put(3, MakeChunk(1, 20), 2);  // still evicts 1, not 2
  EXPECT_FALSE(cache.Contains(1));
  EXPECT_TRUE(cache.Contains(2));
}

// ---------------------------------------------------------------------------
// GetOrLoad single-flight
// ---------------------------------------------------------------------------

TEST(ChunkCacheTest, GetOrLoadHitSkipsLoader) {
  ChunkCache cache(10);
  cache.Put(1, MakeChunk(3, 100), 2);
  std::shared_ptr<const ChunkData> out;
  bool was_hit = false;
  auto status = cache.GetOrLoad(
      1, 2,
      [](ChunkData*) {
        ADD_FAILURE() << "loader must not run on a hit";
        return Status::OK();
      },
      &out, &was_hit);
  ASSERT_TRUE(status.ok());
  EXPECT_TRUE(was_hit);
  ASSERT_NE(out, nullptr);
  EXPECT_EQ(out->ids[0], 100u);
}

TEST(ChunkCacheTest, GetOrLoadMissRunsLoaderAndPublishes) {
  ChunkCache cache(10);
  std::shared_ptr<const ChunkData> out;
  bool was_hit = true;
  auto status = cache.GetOrLoad(
      7, 2,
      [](ChunkData* chunk) {
        *chunk = MakeChunk(2, 70);
        return Status::OK();
      },
      &out, &was_hit);
  ASSERT_TRUE(status.ok());
  EXPECT_FALSE(was_hit);
  ASSERT_NE(out, nullptr);
  EXPECT_EQ(out->ids[0], 70u);
  EXPECT_NE(cache.Get(7), nullptr);  // published for the next caller
  EXPECT_EQ(cache.used_pages(), 2u);
}

// The ISSUE's thundering-herd regression: N threads missing on the same
// chunk must coalesce onto one loader run, while each still counts a miss
// (per-query accounting reads as if it ran alone — only the physical read
// is deduplicated).
TEST(ChunkCacheTest, GetOrLoadCoalescesConcurrentMisses) {
  constexpr size_t kThreads = 8;
  ChunkCache cache(10);
  std::atomic<uint32_t> loads{0};
  std::atomic<size_t> arrived{0};

  std::vector<std::thread> threads;
  std::atomic<uint32_t> bad{0};
  for (size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      std::shared_ptr<const ChunkData> out;
      bool was_hit = true;
      arrived.fetch_add(1);
      auto status = cache.GetOrLoad(
          5, 2,
          [&](ChunkData* chunk) {
            loads.fetch_add(1);
            // Hold the load until every thread has reached GetOrLoad, so
            // all of them join this one flight instead of hitting later.
            while (arrived.load() < kThreads) std::this_thread::yield();
            std::this_thread::sleep_for(std::chrono::milliseconds(20));
            *chunk = MakeChunk(2, 50);
            return Status::OK();
          },
          &out, &was_hit);
      if (!status.ok() || was_hit || out == nullptr || out->ids[0] != 50u) {
        bad.fetch_add(1);
      }
    });
  }
  for (auto& thread : threads) thread.join();

  EXPECT_EQ(loads.load(), 1u);  // one disk read for the whole herd
  EXPECT_EQ(bad.load(), 0u);
  const ChunkCacheStats stats = cache.Stats();
  EXPECT_EQ(stats.misses, kThreads);
  EXPECT_EQ(stats.hits, 0u);
  EXPECT_EQ(stats.single_flight_waits, kThreads - 1);
}

TEST(ChunkCacheTest, GetOrLoadErrorPublishesNothingAndRetries) {
  ChunkCache cache(10);
  std::shared_ptr<const ChunkData> out;
  bool was_hit = true;
  auto failed = cache.GetOrLoad(
      3, 2,
      [](ChunkData* chunk) {
        chunk->ids.push_back(999);  // torn read: partially-filled buffer
        return Status::IoError("injected");
      },
      &out, &was_hit);
  EXPECT_FALSE(failed.ok());
  EXPECT_FALSE(was_hit);
  EXPECT_EQ(cache.Get(3), nullptr);  // the torn buffer was never cached
  EXPECT_EQ(cache.used_pages(), 0u);

  // The failed flight is retired: the next miss retries from scratch.
  auto retried = cache.GetOrLoad(
      3, 2,
      [](ChunkData* chunk) {
        *chunk = MakeChunk(1, 30);
        return Status::OK();
      },
      &out, &was_hit);
  ASSERT_TRUE(retried.ok());
  EXPECT_EQ(out->ids[0], 30u);
}

TEST(ChunkCacheTest, GetOrLoadErrorReachesCoalescedWaiters) {
  ChunkCache cache(10);
  std::atomic<bool> leader_in_loader{false};
  std::atomic<bool> release{false};

  std::shared_ptr<const ChunkData> leader_out;
  bool leader_hit = true;
  Status leader_status;
  std::thread leader([&] {
    leader_status = cache.GetOrLoad(
        9, 2,
        [&](ChunkData*) {
          leader_in_loader.store(true);
          while (!release.load()) std::this_thread::yield();
          return Status::IoError("leader failed");
        },
        &leader_out, &leader_hit);
  });
  while (!leader_in_loader.load()) std::this_thread::yield();

  std::shared_ptr<const ChunkData> waiter_out;
  bool waiter_hit = true;
  Status waiter_status;
  std::thread waiter([&] {
    waiter_status = cache.GetOrLoad(
        9, 2, [](ChunkData*) { return Status::OK(); }, &waiter_out,
        &waiter_hit);
  });
  // Give the waiter time to attach to the in-flight load, then fail it.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  release.store(true);
  leader.join();
  waiter.join();

  EXPECT_FALSE(leader_status.ok());
  EXPECT_EQ(cache.Get(9), nullptr);
  // The waiter either shared the failed flight (error, no loader run) or
  // arrived after its retirement and ran its own loader successfully.
  if (!waiter_status.ok()) {
    EXPECT_EQ(waiter_out, nullptr);
  } else {
    EXPECT_FALSE(waiter_hit);
  }
}

TEST(ChunkCacheTest, GetOrLoadOversizedChunkReturnsDataUncached) {
  ChunkCache cache(4);
  std::shared_ptr<const ChunkData> out;
  bool was_hit = true;
  auto status = cache.GetOrLoad(
      2, 9,  // larger than the whole budget
      [](ChunkData* chunk) {
        *chunk = MakeChunk(2, 20);
        return Status::OK();
      },
      &out, &was_hit);
  ASSERT_TRUE(status.ok());
  EXPECT_FALSE(was_hit);
  ASSERT_NE(out, nullptr);  // caller can still scan the loaded buffer
  EXPECT_EQ(out->ids[0], 20u);
  EXPECT_EQ(cache.Get(2), nullptr);  // but it was too large to cache
  EXPECT_EQ(cache.used_pages(), 0u);
}

// ---------------------------------------------------------------------------
// Sharding
// ---------------------------------------------------------------------------

TEST(ShardedChunkCacheTest, ShardCountClampedToCapacity) {
  ChunkCache tiny(3, 16);
  EXPECT_EQ(tiny.num_shards(), 3u);
  ChunkCache one(10, 0);
  EXPECT_EQ(one.num_shards(), 1u);
  ChunkCache wide(1000, 8);
  EXPECT_EQ(wide.num_shards(), 8u);
}

TEST(ShardedChunkCacheTest, BudgetHeldAcrossShards) {
  ChunkCache cache(64, 4);
  for (uint64_t id = 0; id < 200; ++id) {
    cache.Put(id, MakeChunk(1, static_cast<DescriptorId>(id)), 3);
  }
  // Per-shard budgets sum to the total capacity, so the global page budget
  // is an invariant no interleaving can break.
  EXPECT_LE(cache.used_pages(), 64u);
  EXPECT_GT(cache.size(), 0u);
  EXPECT_GT(cache.Stats().evictions, 0u);
}

TEST(ShardedChunkCacheTest, StatsAggregateOverShards) {
  ChunkCache cache(100, 4);
  for (uint64_t id = 0; id < 20; ++id) {
    cache.Put(id, MakeChunk(1, 0), 1);
  }
  for (uint64_t id = 0; id < 20; ++id) {
    EXPECT_NE(cache.Get(id), nullptr) << "chunk " << id;
  }
  for (uint64_t id = 100; id < 110; ++id) {
    EXPECT_EQ(cache.Get(id), nullptr);
  }
  const ChunkCacheStats stats = cache.Stats();
  EXPECT_EQ(stats.hits, 20u);
  EXPECT_EQ(stats.misses, 10u);
}

// The ISSUE's hammer test: many threads mixing Get/Put on a small sharded
// cache. Checks (a) no crash/race (run under TSan via QVT_SANITIZE=thread),
// (b) page budget and stats invariants hold afterwards, (c) every hit
// observes internally consistent chunk data even across evictions.
TEST(ShardedChunkCacheTest, ConcurrentHammerKeepsInvariants) {
  constexpr size_t kThreads = 8;
  constexpr size_t kOpsPerThread = 4000;
  constexpr uint64_t kIdSpace = 64;
  constexpr uint64_t kCapacity = 48;  // forces steady eviction churn

  ChunkCache cache(kCapacity, 4);
  std::atomic<uint64_t> gets{0};
  std::atomic<uint64_t> bad_reads{0};

  std::vector<std::thread> threads;
  for (size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      Rng rng(1234 + t);
      for (size_t op = 0; op < kOpsPerThread; ++op) {
        const uint64_t id = rng.Uniform(kIdSpace);
        if (rng.Uniform(3) == 0) {
          // Chunk contents are a function of the id, so readers can verify.
          cache.Put(id, MakeChunk(2, static_cast<DescriptorId>(id * 10)),
                    static_cast<uint32_t>(1 + id % 3));
        } else {
          gets.fetch_add(1, std::memory_order_relaxed);
          const auto chunk = cache.Get(id);
          if (chunk != nullptr &&
              (chunk->size() != 2 ||
               chunk->ids[0] != static_cast<DescriptorId>(id * 10))) {
            bad_reads.fetch_add(1, std::memory_order_relaxed);
          }
        }
      }
    });
  }
  for (auto& thread : threads) thread.join();

  EXPECT_EQ(bad_reads.load(), 0u);
  EXPECT_LE(cache.used_pages(), kCapacity);
  const ChunkCacheStats stats = cache.Stats();
  EXPECT_EQ(stats.hits + stats.misses, gets.load());
  // Re-walk the id space serially: everything still resident must verify.
  size_t resident = 0;
  for (uint64_t id = 0; id < kIdSpace; ++id) {
    const auto chunk = cache.Get(id);
    if (chunk == nullptr) continue;
    ++resident;
    ASSERT_EQ(chunk->size(), 2u);
    EXPECT_EQ(chunk->ids[0], static_cast<DescriptorId>(id * 10));
  }
  EXPECT_EQ(resident, cache.size());
}

// ---------------------------------------------------------------------------
// Searcher integration
// ---------------------------------------------------------------------------

struct SearchFixture {
  MemEnv env;
  Collection collection;
  std::optional<ChunkIndex> index;

  SearchFixture() {
    GeneratorConfig generator;
    generator.num_images = 40;
    generator.descriptors_per_image = 30;
    generator.num_modes = 8;
    generator.seed = 31;
    collection = GenerateCollection(generator);
    SrTreeChunker chunker(100);
    auto chunking = chunker.FormChunks(collection);
    QVT_CHECK(chunking.ok());
    auto built = ChunkIndex::Build(collection, *chunking, &env,
                                   ChunkIndexPaths::ForBase("idx"));
    QVT_CHECK(built.ok());
    index.emplace(std::move(built).value());
  }
};

TEST(CachedSearcherTest, RepeatedQueryHitsCache) {
  SearchFixture fx;
  ChunkCache cache(100000);
  Searcher searcher(&*fx.index, DiskCostModel(), &cache);

  auto cold = searcher.Search(fx.collection.Vector(5), 10, StopRule::Exact());
  ASSERT_TRUE(cold.ok());
  EXPECT_EQ(cache.Stats().hits, 0u);
  const uint64_t misses_after_cold = cache.Stats().misses;
  EXPECT_GT(misses_after_cold, 0u);

  auto warm = searcher.Search(fx.collection.Vector(5), 10, StopRule::Exact());
  ASSERT_TRUE(warm.ok());
  EXPECT_EQ(cache.Stats().misses, misses_after_cold);  // all hits now
  EXPECT_GT(cache.Stats().hits, 0u);

  // Identical answers, cheaper modeled time (no I/O charges on hits).
  ASSERT_EQ(cold->neighbors.size(), warm->neighbors.size());
  for (size_t i = 0; i < cold->neighbors.size(); ++i) {
    EXPECT_EQ(cold->neighbors[i].id, warm->neighbors[i].id);
  }
  EXPECT_LT(warm->model_elapsed_micros, cold->model_elapsed_micros);
}

TEST(CachedSearcherTest, CacheAgreesWithUncachedSearch) {
  SearchFixture fx;
  ChunkCache cache(64);  // tiny: constant eviction churn
  Searcher cached(&*fx.index, DiskCostModel(), &cache);
  Searcher plain(&*fx.index, DiskCostModel());

  for (size_t pos : {0u, 11u, 222u, 333u}) {
    auto a = cached.Search(fx.collection.Vector(pos), 8, StopRule::Exact());
    auto b = plain.Search(fx.collection.Vector(pos), 8, StopRule::Exact());
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    ASSERT_EQ(a->neighbors.size(), b->neighbors.size());
    for (size_t i = 0; i < a->neighbors.size(); ++i) {
      EXPECT_EQ(a->neighbors[i].id, b->neighbors[i].id);
      EXPECT_DOUBLE_EQ(a->neighbors[i].distance, b->neighbors[i].distance);
    }
  }
}

// Satellite regression: SearchRange must route chunk reads through the cache
// and charge CPU-only on hits, exactly like Search.
TEST(CachedSearcherTest, RangeSearchUsesCache) {
  SearchFixture fx;
  ChunkCache cache(100000);
  Searcher searcher(&*fx.index, DiskCostModel(), &cache);
  const auto query = fx.collection.Vector(17);
  const double radius = 10.0;

  auto cold = searcher.SearchRange(query, radius, StopRule::Exact());
  ASSERT_TRUE(cold.ok());
  const ChunkCacheStats after_cold = cache.Stats();
  EXPECT_GT(after_cold.misses, 0u);

  auto warm = searcher.SearchRange(query, radius, StopRule::Exact());
  ASSERT_TRUE(warm.ok());
  const ChunkCacheStats after_warm = cache.Stats();
  EXPECT_EQ(after_warm.misses, after_cold.misses);  // all resident now
  EXPECT_GT(after_warm.hits, after_cold.hits);

  // Same answer, but hits were charged ChunkCpuMicros instead of full I/O.
  ASSERT_EQ(cold->neighbors.size(), warm->neighbors.size());
  for (size_t i = 0; i < cold->neighbors.size(); ++i) {
    EXPECT_EQ(cold->neighbors[i].id, warm->neighbors[i].id);
  }
  EXPECT_LT(warm->model_elapsed_micros, cold->model_elapsed_micros);
}

TEST(CachedSearcherTest, RangeSearchCacheAgreesWithUncached) {
  SearchFixture fx;
  ChunkCache cache(64);  // eviction churn
  Searcher cached(&*fx.index, DiskCostModel(), &cache);
  Searcher plain(&*fx.index, DiskCostModel());

  for (size_t pos : {3u, 77u, 400u}) {
    for (double radius : {4.0, 9.0}) {
      auto a = cached.SearchRange(fx.collection.Vector(pos), radius,
                                  StopRule::Exact());
      auto b = plain.SearchRange(fx.collection.Vector(pos), radius,
                                 StopRule::Exact());
      ASSERT_TRUE(a.ok());
      ASSERT_TRUE(b.ok());
      EXPECT_EQ(a->chunks_read, b->chunks_read);
      ASSERT_EQ(a->neighbors.size(), b->neighbors.size());
      for (size_t i = 0; i < a->neighbors.size(); ++i) {
        EXPECT_EQ(a->neighbors[i].id, b->neighbors[i].id);
        EXPECT_DOUBLE_EQ(a->neighbors[i].distance, b->neighbors[i].distance);
      }
    }
  }
}

}  // namespace
}  // namespace qvt
