#include "bench_util/figures.h"

#include <sstream>

#include <gtest/gtest.h>

namespace qvt {
namespace {

QualityCurves MakeCurves(size_t k, double chunk_step, double second_step,
                         size_t reached_until = SIZE_MAX) {
  QualityCurves curves;
  curves.k = k;
  for (size_t n = 1; n <= k; ++n) {
    const bool reached = n <= reached_until;
    curves.queries_reaching.push_back(reached ? 10 : 0);
    curves.mean_chunks_at.push_back(reached ? chunk_step * n : 0.0);
    curves.mean_model_seconds_at.push_back(reached ? second_step * n : 0.0);
    curves.mean_wall_seconds_at.push_back(reached ? second_step * n / 10
                                                  : 0.0);
  }
  return curves;
}

TEST(FiguresTest, PrintsOneRowPerNeighborCount) {
  std::ostringstream os;
  PrintNeighborsFigure(os, "test figure", EffortMetric::kChunksRead,
                       {{"alpha", MakeCurves(5, 1.0, 0.1)},
                        {"beta", MakeCurves(5, 2.0, 0.2)}});
  const std::string out = os.str();
  EXPECT_NE(out.find("test figure"), std::string::npos);
  EXPECT_NE(out.find("alpha"), std::string::npos);
  EXPECT_NE(out.find("beta"), std::string::npos);
  // 5 data rows.
  EXPECT_NE(out.find("\n5 "), std::string::npos);
  // alpha's chunks at n=5 is 5.00, beta's 10.00.
  EXPECT_NE(out.find("5.00"), std::string::npos);
  EXPECT_NE(out.find("10.00"), std::string::npos);
}

TEST(FiguresTest, UnreachedCountsPrintDash) {
  std::ostringstream os;
  PrintNeighborsFigure(os, "partial", EffortMetric::kModelSeconds,
                       {{"s", MakeCurves(4, 1.0, 0.5, /*reached_until=*/2)}});
  const std::string out = os.str();
  EXPECT_NE(out.find("-"), std::string::npos);
}

TEST(FiguresTest, MetricSelectsColumn) {
  std::ostringstream chunks_os, seconds_os, wall_os;
  const std::vector<LabeledCurves> series = {{"s", MakeCurves(3, 7.0, 0.25)}};
  PrintNeighborsFigure(chunks_os, "c", EffortMetric::kChunksRead, series);
  PrintNeighborsFigure(seconds_os, "s", EffortMetric::kModelSeconds, series);
  PrintNeighborsFigure(wall_os, "w", EffortMetric::kWallSeconds, series);
  EXPECT_NE(chunks_os.str().find("21.00"), std::string::npos);   // 7*3
  EXPECT_NE(seconds_os.str().find("0.750"), std::string::npos);  // 0.25*3
  EXPECT_NE(wall_os.str().find("0.075"), std::string::npos);
}

TEST(FiguresTest, SecondsFormatsMilliseconds) {
  EXPECT_EQ(Seconds(1.2345), "1.234");
  EXPECT_EQ(Seconds(0.0), "0.000");
}

TEST(FiguresTest, EmptySeriesPrintsHeaderOnly) {
  std::ostringstream os;
  PrintNeighborsFigure(os, "empty", EffortMetric::kChunksRead, {});
  EXPECT_NE(os.str().find("empty"), std::string::npos);
}

}  // namespace
}  // namespace qvt
