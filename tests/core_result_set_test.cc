#include "core/result_set.h"

#include <algorithm>

#include <gtest/gtest.h>

#include "util/random.h"

namespace qvt {
namespace {

TEST(KnnResultSetTest, FillsUpToK) {
  KnnResultSet set(3);
  EXPECT_FALSE(set.full());
  EXPECT_EQ(set.KthDistance(), std::numeric_limits<double>::infinity());
  EXPECT_TRUE(set.Insert(1, 5.0));
  EXPECT_TRUE(set.Insert(2, 1.0));
  EXPECT_TRUE(set.Insert(3, 3.0));
  EXPECT_TRUE(set.full());
  EXPECT_DOUBLE_EQ(set.KthDistance(), 5.0);
}

TEST(KnnResultSetTest, EvictsWorst) {
  KnnResultSet set(2);
  set.Insert(1, 5.0);
  set.Insert(2, 3.0);
  EXPECT_FALSE(set.Insert(3, 9.0));  // worse than kth
  EXPECT_TRUE(set.Insert(4, 1.0));   // evicts id 1
  const auto sorted = set.Sorted();
  ASSERT_EQ(sorted.size(), 2u);
  EXPECT_EQ(sorted[0].id, 4u);
  EXPECT_EQ(sorted[1].id, 2u);
  EXPECT_DOUBLE_EQ(set.KthDistance(), 3.0);
}

TEST(KnnResultSetTest, EqualDistanceTiesBreakBySmallerId) {
  KnnResultSet set(1);
  set.Insert(5, 2.0);
  // Larger id at the same distance loses; smaller id wins.
  EXPECT_FALSE(set.Insert(9, 2.0));
  EXPECT_EQ(set.Sorted()[0].id, 5u);
  EXPECT_TRUE(set.Insert(1, 2.0));
  EXPECT_EQ(set.Sorted()[0].id, 1u);
  EXPECT_DOUBLE_EQ(set.KthDistance(), 2.0);
}

TEST(KnnResultSetTest, TiedSetIndependentOfInsertionOrder) {
  // Five candidates at the same distance, k = 3: whatever the offer order,
  // the kept set must be the three smallest ids — the determinism the
  // threaded and serial search paths rely on at distance ties.
  const DescriptorId ids[] = {40, 10, 30, 50, 20};
  std::vector<DescriptorId> order(std::begin(ids), std::end(ids));
  std::sort(order.begin(), order.end());
  do {
    KnnResultSet set(3);
    for (const DescriptorId id : order) set.Insert(id, 7.5);
    const auto sorted = set.Sorted();
    ASSERT_EQ(sorted.size(), 3u);
    EXPECT_EQ(sorted[0].id, 10u);
    EXPECT_EQ(sorted[1].id, 20u);
    EXPECT_EQ(sorted[2].id, 30u);
  } while (std::next_permutation(order.begin(), order.end()));
}

TEST(KnnResultSetTest, SortedIsAscendingAndStable) {
  KnnResultSet set(5);
  set.Insert(10, 3.0);
  set.Insert(11, 1.0);
  set.Insert(12, 2.0);
  const auto sorted = set.Sorted();
  ASSERT_EQ(sorted.size(), 3u);
  EXPECT_EQ(sorted[0].id, 11u);
  EXPECT_EQ(sorted[1].id, 12u);
  EXPECT_EQ(sorted[2].id, 10u);
  // Sorted() leaves the set intact.
  EXPECT_EQ(set.size(), 3u);
}

TEST(KnnResultSetTest, ClearEmpties) {
  KnnResultSet set(2);
  set.Insert(1, 1.0);
  set.Clear();
  EXPECT_EQ(set.size(), 0u);
  EXPECT_FALSE(set.full());
}

class ResultSetPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ResultSetPropertyTest, MatchesSortOfAllCandidates) {
  Rng rng(GetParam());
  const size_t k = 10;
  KnnResultSet set(k);
  std::vector<Neighbor> all;
  for (DescriptorId id = 0; id < 500; ++id) {
    const double dist = rng.UniformDouble(0, 100);
    set.Insert(id, dist);
    all.push_back({id, dist});
  }
  std::sort(all.begin(), all.end(), [](const Neighbor& a, const Neighbor& b) {
    return a.distance < b.distance;
  });
  const auto result = set.Sorted();
  ASSERT_EQ(result.size(), k);
  for (size_t i = 0; i < k; ++i) {
    EXPECT_DOUBLE_EQ(result[i].distance, all[i].distance) << "rank " << i;
    EXPECT_EQ(result[i].id, all[i].id);
  }
  EXPECT_DOUBLE_EQ(set.KthDistance(), all[k - 1].distance);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ResultSetPropertyTest,
                         ::testing::Values(1, 7, 42, 1000));

}  // namespace
}  // namespace qvt
