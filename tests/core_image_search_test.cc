#include "core/image_search.h"

#include <gtest/gtest.h>

#include "cluster/srtree_chunker.h"
#include "core/chunk_index.h"
#include "descriptor/generator.h"
#include "util/logging.h"
#include "util/random.h"

namespace qvt {
namespace {

struct Fixture {
  MemEnv env;
  Collection collection;
  std::optional<ChunkIndex> index;
  std::optional<Searcher> searcher;
  std::vector<ImageId> image_of;

  Fixture() {
    GeneratorConfig generator;
    generator.num_images = 60;
    generator.descriptors_per_image = 40;
    generator.num_modes = 10;
    generator.seed = 77;
    collection = GenerateCollection(generator);

    image_of.resize(collection.size());
    for (size_t i = 0; i < collection.size(); ++i) {
      image_of[collection.Id(i)] = collection.Image(i);
    }

    SrTreeChunker chunker(300);
    auto chunking = chunker.FormChunks(collection);
    QVT_CHECK(chunking.ok());
    auto built = ChunkIndex::Build(collection, *chunking, &env,
                                   ChunkIndexPaths::ForBase("idx"));
    QVT_CHECK(built.ok());
    index.emplace(std::move(built).value());
    searcher.emplace(&*index, DiskCostModel());
  }

  /// All descriptors of `image`, flat, optionally with noise.
  std::vector<float> ImageDescriptors(ImageId image, double noise,
                                      Rng* rng) const {
    std::vector<float> out;
    for (size_t i = 0; i < collection.size(); ++i) {
      if (collection.Image(i) != image) continue;
      for (float x : collection.Vector(i)) {
        out.push_back(noise > 0
                          ? static_cast<float>(x + rng->Gaussian(0, noise))
                          : x);
      }
    }
    return out;
  }
};

TEST(ImageSearchTest, IdentifiesExactSourceImage) {
  Fixture fx;
  Rng rng(1);
  const std::vector<float> query = fx.ImageDescriptors(17, 0.0, &rng);
  ImageSearcher image_search(&*fx.searcher, fx.image_of);

  auto matches = image_search.Search(query, fx.collection.dim(),
                                     ImageSearchOptions{});
  ASSERT_TRUE(matches.ok());
  ASSERT_FALSE(matches->empty());
  EXPECT_EQ(matches->front().image, 17u);
  // The source image must dominate the runner-up.
  if (matches->size() > 1) {
    EXPECT_GT(matches->front().score, 2.0 * (*matches)[1].score);
  }
}

TEST(ImageSearchTest, IdentifiesNoisySourceImage) {
  Fixture fx;
  Rng rng(2);
  const std::vector<float> query = fx.ImageDescriptors(33, 0.4, &rng);
  ImageSearcher image_search(&*fx.searcher, fx.image_of);
  auto matches = image_search.Search(query, fx.collection.dim(),
                                     ImageSearchOptions{});
  ASSERT_TRUE(matches.ok());
  ASSERT_FALSE(matches->empty());
  EXPECT_EQ(matches->front().image, 33u);
}

TEST(ImageSearchTest, VotingSchemesAllIdentify) {
  Fixture fx;
  Rng rng(3);
  const std::vector<float> query = fx.ImageDescriptors(5, 0.2, &rng);
  ImageSearcher image_search(&*fx.searcher, fx.image_of);
  for (VotingScheme scheme :
       {VotingScheme::kCount, VotingScheme::kDistanceWeighted,
        VotingScheme::kRankWeighted}) {
    ImageSearchOptions options;
    options.voting = scheme;
    auto matches = image_search.Search(query, fx.collection.dim(), options);
    ASSERT_TRUE(matches.ok());
    ASSERT_FALSE(matches->empty());
    EXPECT_EQ(matches->front().image, 5u);
  }
}

TEST(ImageSearchTest, StatsAccumulate) {
  Fixture fx;
  Rng rng(4);
  const std::vector<float> query = fx.ImageDescriptors(8, 0.0, &rng);
  const size_t num_descriptors = query.size() / fx.collection.dim();
  ImageSearcher image_search(&*fx.searcher, fx.image_of);

  ImageSearchOptions options;
  options.stop = StopRule::MaxChunks(2);
  ImageSearchStats stats;
  auto matches =
      image_search.Search(query, fx.collection.dim(), options, &stats);
  ASSERT_TRUE(matches.ok());
  EXPECT_EQ(stats.descriptor_queries, num_descriptors);
  EXPECT_LE(stats.chunks_read, 2 * num_descriptors);
  EXPECT_GT(stats.chunks_read, 0u);
  EXPECT_GT(stats.model_elapsed_micros, 0);
}

TEST(ImageSearchTest, MaxResultsTruncates) {
  Fixture fx;
  Rng rng(5);
  const std::vector<float> query = fx.ImageDescriptors(9, 0.0, &rng);
  ImageSearcher image_search(&*fx.searcher, fx.image_of);
  ImageSearchOptions options;
  options.max_results = 3;
  auto matches = image_search.Search(query, fx.collection.dim(), options);
  ASSERT_TRUE(matches.ok());
  EXPECT_LE(matches->size(), 3u);
}

TEST(ImageSearchTest, ScoresSortedDescending) {
  Fixture fx;
  Rng rng(6);
  const std::vector<float> query = fx.ImageDescriptors(11, 0.5, &rng);
  ImageSearcher image_search(&*fx.searcher, fx.image_of);
  ImageSearchOptions options;
  options.max_results = 0;
  auto matches = image_search.Search(query, fx.collection.dim(), options);
  ASSERT_TRUE(matches.ok());
  for (size_t i = 1; i < matches->size(); ++i) {
    EXPECT_GE((*matches)[i - 1].score, (*matches)[i].score);
  }
}

TEST(ImageSearchTest, InvalidInputsRejected) {
  Fixture fx;
  ImageSearcher image_search(&*fx.searcher, fx.image_of);
  std::vector<float> not_multiple(fx.collection.dim() + 1, 0.0f);
  EXPECT_TRUE(image_search
                  .Search(not_multiple, fx.collection.dim(),
                          ImageSearchOptions{})
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(image_search.Search({}, fx.collection.dim(),
                                  ImageSearchOptions{})
                  .status()
                  .IsInvalidArgument());
  ImageSearchOptions zero_k;
  zero_k.k_per_descriptor = 0;
  std::vector<float> one(fx.collection.dim(), 0.0f);
  EXPECT_TRUE(image_search.Search(one, fx.collection.dim(), zero_k)
                  .status()
                  .IsInvalidArgument());
}

}  // namespace
}  // namespace qvt
