// Product-quantization training/encoding: shape validation, determinism
// across build thread counts and SIMD backends, and encoding quality
// basics (codes index real entries; reconstruction beats a random code).

#include <gtest/gtest.h>

#include <cstring>
#include <utility>
#include <vector>

#include "cluster/pq.h"
#include "descriptor/generator.h"
#include "geometry/kernels.h"
#include "util/parallel_for.h"
#include "util/random.h"

namespace qvt {
namespace {

struct BuildThreadsGuard {
  explicit BuildThreadsGuard(size_t n) { SetBuildThreads(n); }
  ~BuildThreadsGuard() { SetBuildThreads(0); }
};

struct BackendGuard {
  explicit BackendGuard(kernels::Backend b) {
    kernels::SetBackendForTesting(b);
  }
  ~BackendGuard() { kernels::ResetBackendForTesting(); }
};

Collection MakeCollection(size_t images, uint64_t seed) {
  GeneratorConfig config;
  config.num_images = images;
  config.seed = seed;
  return GenerateCollection(config);
}

TEST(PqTest, RejectsBadShapes) {
  const Collection collection = MakeCollection(4, 3);
  PqConfig config;
  config.m = 5;  // 24 % 5 != 0
  EXPECT_TRUE(TrainPq(collection, config).status().IsInvalidArgument());
  config.m = 48;  // larger than dim
  EXPECT_TRUE(TrainPq(collection, config).status().IsInvalidArgument());
  config.m = 8;
  config.ksub = 0;
  EXPECT_TRUE(TrainPq(collection, config).status().IsInvalidArgument());
  config.ksub = 257;
  EXPECT_TRUE(TrainPq(collection, config).status().IsInvalidArgument());
  config.ksub = 16;
  EXPECT_TRUE(TrainPq(Collection(24), config).status().IsInvalidArgument());

  auto codebook_or = TrainPq(collection, config);
  ASSERT_TRUE(codebook_or.ok()) << codebook_or.status().message();
  PqCodebook codebook = std::move(*codebook_or);
  EXPECT_TRUE(
      PqEncode(Collection(12), codebook).status().IsInvalidArgument());
}

TEST(PqTest, TrainsAndEncodesAllSupportedShapes) {
  const Collection collection = MakeCollection(6, 5);
  for (const size_t m : {size_t{1}, size_t{3}, size_t{8}, size_t{12}}) {
    PqConfig config;
    config.m = m;
    config.ksub = 16;
    config.max_iterations = 8;
    auto codebook_or = TrainPq(collection, config);
    ASSERT_TRUE(codebook_or.ok()) << codebook_or.status().message();
    PqCodebook codebook = std::move(*codebook_or);
    EXPECT_EQ(codebook.dim, collection.dim());
    EXPECT_EQ(codebook.centroids.size(), m * 16 * (24 / m));
    auto codes_or = PqEncode(collection, codebook);
    ASSERT_TRUE(codes_or.ok()) << codes_or.status().message();
    std::vector<uint8_t> codes = std::move(*codes_or);
    ASSERT_EQ(codes.size(), collection.size() * m);
    for (const uint8_t c : codes) EXPECT_LT(c, 16);
  }
}

TEST(PqTest, ShortCollectionPadsCodebookWithoutSelectingDuplicates) {
  // Fewer rows than ksub: tail entries duplicate entry 0 and must never be
  // selected (strict <, lowest index on ties).
  Collection collection(24);
  Rng rng(11);
  for (uint32_t i = 0; i < 5; ++i) {
    std::vector<float> v(24);
    for (auto& x : v) x = static_cast<float>(rng.UniformDouble(-1.0, 1.0));
    collection.Append(i, v);
  }
  PqConfig config;
  config.m = 4;
  config.ksub = 16;
  auto codebook_or = TrainPq(collection, config);
  ASSERT_TRUE(codebook_or.ok()) << codebook_or.status().message();
  PqCodebook codebook = std::move(*codebook_or);
  auto codes_or = PqEncode(collection, codebook);
  ASSERT_TRUE(codes_or.ok()) << codes_or.status().message();
  std::vector<uint8_t> codes = std::move(*codes_or);
  for (const uint8_t c : codes) EXPECT_LT(c, 5);
}

TEST(PqTest, ByteIdenticalAcrossThreadCounts) {
  const Collection collection = MakeCollection(12, 7);
  PqConfig config;
  config.m = 8;
  config.ksub = 32;
  config.max_iterations = 10;

  std::vector<float> baseline_centroids;
  std::vector<uint8_t> baseline_codes;
  for (const size_t threads : {size_t{1}, size_t{2}, size_t{4}, size_t{8}}) {
    BuildThreadsGuard guard(threads);
    auto codebook_or = TrainPq(collection, config);
    ASSERT_TRUE(codebook_or.ok()) << codebook_or.status().message();
    PqCodebook codebook = std::move(*codebook_or);
    auto codes_or = PqEncode(collection, codebook);
    ASSERT_TRUE(codes_or.ok()) << codes_or.status().message();
    std::vector<uint8_t> codes = std::move(*codes_or);
    if (threads == 1) {
      baseline_centroids = codebook.centroids;
      baseline_codes = codes;
      continue;
    }
    ASSERT_EQ(codebook.centroids.size(), baseline_centroids.size());
    EXPECT_EQ(0, std::memcmp(codebook.centroids.data(),
                             baseline_centroids.data(),
                             baseline_centroids.size() * sizeof(float)))
        << "threads=" << threads;
    EXPECT_EQ(codes, baseline_codes) << "threads=" << threads;
  }
}

TEST(PqTest, ByteIdenticalAcrossSimdBackends) {
  const Collection collection = MakeCollection(10, 13);
  PqConfig config;
  config.m = 6;
  config.ksub = 24;
  config.max_iterations = 10;

  std::vector<float> baseline_centroids;
  std::vector<uint8_t> baseline_codes;
  bool first = true;
  for (kernels::Backend b :
       {kernels::Backend::kScalar, kernels::Backend::kSse2,
        kernels::Backend::kAvx2, kernels::Backend::kNeon}) {
    if (!kernels::BackendSupported(b)) continue;
    BackendGuard guard(b);
    auto codebook_or = TrainPq(collection, config);
    ASSERT_TRUE(codebook_or.ok()) << codebook_or.status().message();
    PqCodebook codebook = std::move(*codebook_or);
    auto codes_or = PqEncode(collection, codebook);
    ASSERT_TRUE(codes_or.ok()) << codes_or.status().message();
    std::vector<uint8_t> codes = std::move(*codes_or);
    if (first) {
      baseline_centroids = codebook.centroids;
      baseline_codes = codes;
      first = false;
      continue;
    }
    EXPECT_EQ(0, std::memcmp(codebook.centroids.data(),
                             baseline_centroids.data(),
                             baseline_centroids.size() * sizeof(float)))
        << "backend=" << kernels::BackendName(b);
    EXPECT_EQ(codes, baseline_codes)
        << "backend=" << kernels::BackendName(b);
  }
}

TEST(PqTest, ReconstructionBeatsRandomCodes) {
  const Collection collection = MakeCollection(8, 17);
  PqConfig config;
  config.m = 8;
  config.ksub = 64;
  auto codebook_or = TrainPq(collection, config);
  ASSERT_TRUE(codebook_or.ok()) << codebook_or.status().message();
  PqCodebook codebook = std::move(*codebook_or);
  auto codes_or = PqEncode(collection, codebook);
  ASSERT_TRUE(codes_or.ok()) << codes_or.status().message();
  std::vector<uint8_t> codes = std::move(*codes_or);
  const size_t sub_dim = codebook.sub_dim();
  Rng rng(19);
  double trained_err = 0.0, random_err = 0.0;
  for (size_t i = 0; i < collection.size(); ++i) {
    const auto v = collection.Vector(i);
    for (size_t s = 0; s < codebook.m; ++s) {
      const float* entry =
          codebook.centroids.data() +
          (s * codebook.ksub + codes[i * codebook.m + s]) * sub_dim;
      const float* rand_entry =
          codebook.centroids.data() +
          (s * codebook.ksub + rng.Uniform(codebook.ksub)) * sub_dim;
      for (size_t d = 0; d < sub_dim; ++d) {
        const double t = v[s * sub_dim + d] - entry[d];
        const double r = v[s * sub_dim + d] - rand_entry[d];
        trained_err += t * t;
        random_err += r * r;
      }
    }
  }
  EXPECT_LT(trained_err, random_err * 0.5);
}

}  // namespace
}  // namespace qvt
