#include "core/batch_searcher.h"

#include <gtest/gtest.h>

#include "bench_util/runner.h"
#include "cluster/round_robin.h"
#include "cluster/srtree_chunker.h"
#include "core/exact_scan.h"
#include "descriptor/generator.h"
#include "descriptor/workload.h"
#include "storage/chunk_cache.h"
#include "util/logging.h"
#include "util/random.h"

namespace qvt {
namespace {

struct BatchFixture {
  MemEnv env;
  Collection collection;
  std::optional<ChunkIndex> index;
  Workload workload;

  explicit BatchFixture(size_t num_queries = 120, uint64_t seed = 21) {
    GeneratorConfig config;
    config.num_images = 40;
    config.descriptors_per_image = 25;
    config.num_modes = 8;
    config.seed = seed;
    collection = GenerateCollection(config);
    SrTreeChunker chunker(80);
    auto chunking = chunker.FormChunks(collection);
    QVT_CHECK(chunking.ok());
    auto built = ChunkIndex::Build(collection, *chunking, &env,
                                   ChunkIndexPaths::ForBase("idx"));
    QVT_CHECK(built.ok());
    index.emplace(std::move(built).value());
    Rng rng(seed + 1);
    workload = MakeDatasetQueries(collection, num_queries, &rng);
  }
};

// Compares unified batch results against a directly-collected serial
// reference of native SearchResults — pinning the adapter's telemetry
// mapping as well as the neighbors.
void ExpectIdenticalResults(const std::vector<MethodResult>& a,
                            const std::vector<SearchResult>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (size_t q = 0; q < a.size(); ++q) {
    EXPECT_EQ(a[q].telemetry.chunks_read, b[q].chunks_read) << "query " << q;
    EXPECT_EQ(a[q].telemetry.descriptors_scanned, b[q].descriptors_processed)
        << "query " << q;
    EXPECT_EQ(a[q].telemetry.model_micros, b[q].model_elapsed_micros)
        << "query " << q;
    EXPECT_EQ(a[q].telemetry.exact, b[q].exact) << "query " << q;
    ASSERT_EQ(a[q].neighbors.size(), b[q].neighbors.size()) << "query " << q;
    for (size_t i = 0; i < a[q].neighbors.size(); ++i) {
      EXPECT_EQ(a[q].neighbors[i].id, b[q].neighbors[i].id)
          << "query " << q << " rank " << i;
      EXPECT_DOUBLE_EQ(a[q].neighbors[i].distance, b[q].neighbors[i].distance)
          << "query " << q << " rank " << i;
    }
  }
}

// The ISSUE's headline determinism test: 8 worker threads must return
// bit-identical neighbors, chunks_read, and modeled times to the serial
// searcher, over >= 100 queries.
TEST(BatchSearcherTest, EightThreadsBitIdenticalToSerial) {
  BatchFixture fx(/*num_queries=*/120);
  Searcher searcher(&*fx.index, DiskCostModel());

  // Reference: the plain serial loop over Searcher::Search.
  std::vector<SearchResult> serial;
  for (size_t q = 0; q < fx.workload.num_queries(); ++q) {
    auto result =
        searcher.Search(fx.workload.Query(q), 10, StopRule::Exact());
    ASSERT_TRUE(result.ok());
    serial.push_back(std::move(result).value());
  }

  BatchSearcher threaded(&searcher, 8);
  auto batch = threaded.SearchAll(fx.workload, 10, StopRule::Exact());
  ASSERT_TRUE(batch.ok());
  EXPECT_EQ(batch->num_threads, 8u);
  ExpectIdenticalResults(batch->results, serial);
}

TEST(BatchSearcherTest, SingleThreadMatchesSerialLoop) {
  BatchFixture fx(/*num_queries=*/40);
  Searcher searcher(&*fx.index, DiskCostModel());

  std::vector<SearchResult> serial;
  for (size_t q = 0; q < fx.workload.num_queries(); ++q) {
    auto result = searcher.Search(fx.workload.Query(q), 5,
                                  StopRule::MaxChunks(3));
    ASSERT_TRUE(result.ok());
    serial.push_back(std::move(result).value());
  }

  BatchSearcher batch_searcher(&searcher, 1);
  auto batch = batch_searcher.SearchAll(fx.workload, 5, StopRule::MaxChunks(3));
  ASSERT_TRUE(batch.ok());
  ExpectIdenticalResults(batch->results, serial);
}

TEST(BatchSearcherTest, ResultsStayInInputOrder) {
  BatchFixture fx(/*num_queries=*/100);
  Searcher searcher(&*fx.index, DiskCostModel());
  BatchSearcher threaded(&searcher, 8);
  auto batch = threaded.SearchAll(fx.workload, 3, StopRule::Exact());
  ASSERT_TRUE(batch.ok());
  // Dataset queries are collection members: result slot q must hold the
  // query q whose own descriptor sits at distance 0.
  for (size_t q = 0; q < fx.workload.num_queries(); ++q) {
    ASSERT_FALSE(batch->results[q].neighbors.empty()) << "query " << q;
    EXPECT_DOUBLE_EQ(batch->results[q].neighbors[0].distance, 0.0)
        << "query " << q;
  }
}

TEST(BatchSearcherTest, SharedCacheKeepsAnswersIdentical) {
  BatchFixture fx(/*num_queries=*/100);
  Searcher plain(&*fx.index, DiskCostModel());
  ChunkCache cache(256, /*num_shards=*/4);  // small: eviction under load
  Searcher cached(&*fx.index, DiskCostModel(), &cache);

  BatchSearcher serial(&plain, 1);
  auto reference = serial.SearchAll(fx.workload, 10, StopRule::Exact());
  ASSERT_TRUE(reference.ok());

  BatchSearcher threaded(&cached, 8);
  auto batch = threaded.SearchAll(fx.workload, 10, StopRule::Exact());
  ASSERT_TRUE(batch.ok());

  // Neighbors and chunks_read must not depend on cache hits (only the
  // modeled charge does, which a shared cache makes schedule-dependent).
  for (size_t q = 0; q < fx.workload.num_queries(); ++q) {
    const MethodResult& a = batch->results[q];
    const MethodResult& b = reference->results[q];
    EXPECT_EQ(a.telemetry.chunks_read, b.telemetry.chunks_read)
        << "query " << q;
    ASSERT_EQ(a.neighbors.size(), b.neighbors.size()) << "query " << q;
    for (size_t i = 0; i < a.neighbors.size(); ++i) {
      EXPECT_EQ(a.neighbors[i].id, b.neighbors[i].id)
          << "query " << q << " rank " << i;
    }
    // The cached run's telemetry must balance its verdicts.
    EXPECT_EQ(a.telemetry.cache_hits + a.telemetry.cache_misses,
              a.telemetry.chunks_read)
        << "query " << q;
  }
  const ChunkCacheStats stats = cache.Stats();
  EXPECT_GT(stats.hits + stats.misses, 0u);
  EXPECT_LE(cache.used_pages(), 256u);
}

// Pipelined fetches under a concurrent batch: every worker thread runs its
// queries through PrefetchStreams against one shared prefetcher and cache.
// Neighbors and chunks_read must match the synchronous depth-0 serial
// reference exactly (modeled time is excluded: with a *shared* cache it
// depends on which thread warmed a chunk first, prefetch or not).
TEST(BatchSearcherTest, PrefetchingThreadsMatchSynchronousSerial) {
  BatchFixture fx(/*num_queries=*/100);
  PrefetcherOptions no_prefetch;
  no_prefetch.depth = 0;
  Searcher sync(&*fx.index, DiskCostModel(), nullptr, no_prefetch);
  ASSERT_EQ(sync.prefetcher(), nullptr);

  PrefetcherOptions deep;
  deep.depth = 4;
  deep.io_threads = 4;
  ChunkCache cache(256, /*num_shards=*/4);
  Searcher pipelined(&*fx.index, DiskCostModel(), &cache, deep);
  ASSERT_NE(pipelined.prefetcher(), nullptr);

  PrefetchStats total;
  for (const StopRule& rule : {StopRule::Exact(), StopRule::MaxChunks(3)}) {
    BatchSearcher serial(&sync, 1);
    auto reference = serial.SearchAll(fx.workload, 10, rule);
    ASSERT_TRUE(reference.ok());
    EXPECT_EQ(reference->totals.prefetch.issued, 0u);  // fully synchronous

    BatchSearcher threaded(&pipelined, 8);
    auto batch = threaded.SearchAll(fx.workload, 10, rule);
    ASSERT_TRUE(batch.ok());

    for (size_t q = 0; q < fx.workload.num_queries(); ++q) {
      const MethodResult& a = batch->results[q];
      const MethodResult& b = reference->results[q];
      EXPECT_EQ(a.telemetry.chunks_read, b.telemetry.chunks_read)
          << "query " << q;
      EXPECT_EQ(a.telemetry.exact, b.telemetry.exact) << "query " << q;
      ASSERT_EQ(a.neighbors.size(), b.neighbors.size()) << "query " << q;
      for (size_t i = 0; i < a.neighbors.size(); ++i) {
        EXPECT_EQ(a.neighbors[i].id, b.neighbors[i].id)
            << "query " << q << " rank " << i;
        EXPECT_EQ(a.neighbors[i].distance, b.neighbors[i].distance)
            << "query " << q << " rank " << i;
      }
    }
    // The batch aggregates every stream's counters, and the ledger balances.
    const PrefetchStats& p = batch->totals.prefetch;
    EXPECT_EQ(p.issued, p.used + p.wasted + p.cancelled);
    total += p;
  }
  // The cold first pass must have pushed real reads through the pipeline.
  EXPECT_GT(total.issued, 0u);
}

TEST(BatchSearcherTest, PercentilesAreOrdered) {
  BatchFixture fx(/*num_queries=*/50);
  Searcher searcher(&*fx.index, DiskCostModel());
  BatchSearcher batch_searcher(&searcher, 4);
  auto batch = batch_searcher.SearchAll(fx.workload, 5, StopRule::Exact());
  ASSERT_TRUE(batch.ok());
  EXPECT_LE(batch->wall.p50, batch->wall.p95);
  EXPECT_LE(batch->wall.p95, batch->wall.p99);
  EXPECT_LE(batch->wall.p99, batch->wall.max);
  EXPECT_LE(batch->model.p50, batch->model.p95);
  EXPECT_LE(batch->model.p95, batch->model.p99);
  EXPECT_LE(batch->model.p99, batch->model.max);
  EXPECT_GT(batch->model.p50, 0);
  EXPECT_GE(batch->batch_wall_micros, 0);
}

TEST(BatchSearcherTest, PropagatesPerQueryErrors) {
  BatchFixture fx(/*num_queries=*/10);
  Searcher searcher(&*fx.index, DiskCostModel());
  BatchSearcher batch_searcher(&searcher, 4);
  auto bad = batch_searcher.SearchAll(fx.workload, 0, StopRule::Exact());
  EXPECT_TRUE(bad.status().IsInvalidArgument());
}

TEST(BatchSearcherTest, EmptyWorkloadSucceeds) {
  BatchFixture fx(/*num_queries=*/5);
  Searcher searcher(&*fx.index, DiskCostModel());
  BatchSearcher batch_searcher(&searcher, 4);
  Workload empty;
  empty.dim = fx.workload.dim;
  auto batch = batch_searcher.SearchAll(empty, 5, StopRule::Exact());
  ASSERT_TRUE(batch.ok());
  EXPECT_TRUE(batch->results.empty());
  // Regression: aggregating a zero-query batch must not abort in the
  // percentile path (SampleStats used to QVT_CHECK on empty input); the
  // latency summary degrades to all-zero defaults instead.
  EXPECT_EQ(batch->wall.p50, 0);
  EXPECT_EQ(batch->wall.p99, 0);
  EXPECT_EQ(batch->wall.max, 0);
  EXPECT_EQ(batch->wall.mean, 0.0);
  EXPECT_EQ(batch->model.p50, 0);
  EXPECT_EQ(batch->model.max, 0);
}

// ---------------------------------------------------------------------------
// bench_util wiring
// ---------------------------------------------------------------------------

TEST(RunWorkloadBatchTest, ThreadCountDoesNotChangeDeterministicMetrics) {
  BatchFixture fx(/*num_queries=*/100);
  Searcher searcher(&*fx.index, DiskCostModel());
  const GroundTruth truth =
      GroundTruth::Compute(fx.collection, fx.workload, 10);

  auto serial = RunWorkloadBatch(searcher, fx.workload, &truth, 10,
                                 StopRule::Exact(), 1);
  auto threaded = RunWorkloadBatch(searcher, fx.workload, &truth, 10,
                                   StopRule::Exact(), 8);
  ASSERT_TRUE(serial.ok());
  ASSERT_TRUE(threaded.ok());
  EXPECT_EQ(serial->num_threads, 1u);
  EXPECT_EQ(threaded->num_threads, 8u);
  EXPECT_DOUBLE_EQ(serial->mean_chunks_read, threaded->mean_chunks_read);
  EXPECT_DOUBLE_EQ(serial->mean_final_precision,
                   threaded->mean_final_precision);
  EXPECT_DOUBLE_EQ(serial->mean_final_precision, 1.0);  // exact stop rule
  EXPECT_EQ(serial->model.p50, threaded->model.p50);
  EXPECT_EQ(serial->model.p99, threaded->model.p99);
}

TEST(RunWorkloadBatchTest, RejectsMismatchedTruth) {
  BatchFixture fx(/*num_queries=*/10);
  Searcher searcher(&*fx.index, DiskCostModel());
  const GroundTruth truth = GroundTruth::Compute(fx.collection, fx.workload, 5);
  auto report = RunWorkloadBatch(searcher, fx.workload, &truth, 10,
                                 StopRule::Exact(), 2);
  EXPECT_TRUE(report.status().IsInvalidArgument());
}

}  // namespace
}  // namespace qvt
