#include "descriptor/collection.h"

#include <gtest/gtest.h>

#include "descriptor/types.h"

namespace qvt {
namespace {

std::vector<float> Vec24(float fill) {
  return std::vector<float>(kDescriptorDim, fill);
}

TEST(TypesTest, RecordLayoutIs100BytesFor24d) {
  EXPECT_EQ(DescriptorRecordBytes(kDescriptorDim), 100u);
  EXPECT_EQ(DescriptorRecordBytes(2), 12u);
}

TEST(CollectionTest, AppendAndAccess) {
  Collection c(3);
  c.Append(7, std::vector<float>{1, 2, 3}, 99);
  ASSERT_EQ(c.size(), 1u);
  EXPECT_EQ(c.Id(0), 7u);
  EXPECT_EQ(c.Image(0), 99u);
  EXPECT_FLOAT_EQ(c.Vector(0)[1], 2.0f);
  EXPECT_EQ(c.RawData().size(), 3u);
}

TEST(CollectionTest, SubsetPreservesIdsAndValues) {
  Collection c(2);
  for (int i = 0; i < 5; ++i) {
    c.Append(static_cast<DescriptorId>(100 + i),
             std::vector<float>{static_cast<float>(i), 0}, i);
  }
  std::vector<size_t> picks = {4, 0, 2};
  const Collection sub = c.Subset(picks);
  ASSERT_EQ(sub.size(), 3u);
  EXPECT_EQ(sub.Id(0), 104u);
  EXPECT_EQ(sub.Id(1), 100u);
  EXPECT_EQ(sub.Id(2), 102u);
  EXPECT_FLOAT_EQ(sub.Vector(0)[0], 4.0f);
  EXPECT_EQ(sub.Image(0), 4u);
}

TEST(CollectionTest, SaveLoadRoundTrip) {
  MemEnv env;
  Collection c;
  for (int i = 0; i < 10; ++i) {
    c.Append(static_cast<DescriptorId>(i * 3), Vec24(static_cast<float>(i)),
             static_cast<ImageId>(i / 2));
  }
  ASSERT_TRUE(c.Save(&env, "col").ok());

  // Record format: exactly 100 bytes per descriptor.
  EXPECT_EQ(*env.GetFileSize("col"), 10u * 100u);

  auto loaded = Collection::Load(&env, "col");
  ASSERT_TRUE(loaded.ok());
  ASSERT_EQ(loaded->size(), 10u);
  for (size_t i = 0; i < 10; ++i) {
    EXPECT_EQ(loaded->Id(i), c.Id(i));
    EXPECT_EQ(loaded->Image(i), c.Image(i));
    for (size_t d = 0; d < kDescriptorDim; ++d) {
      EXPECT_FLOAT_EQ(loaded->Vector(i)[d], c.Vector(i)[d]);
    }
  }
}

TEST(CollectionTest, LoadRejectsTruncatedFile) {
  MemEnv env;
  std::vector<uint8_t> bytes(150, 0);  // not a multiple of 100
  ASSERT_TRUE(WriteFileBytes(&env, "bad", bytes.data(), bytes.size()).ok());
  EXPECT_TRUE(Collection::Load(&env, "bad").status().IsCorruption());
}

TEST(CollectionTest, LoadMissingFileFails) {
  MemEnv env;
  EXPECT_FALSE(Collection::Load(&env, "missing").ok());
}

TEST(CollectionTest, EmptyCollectionRoundTrip) {
  MemEnv env;
  Collection c;
  ASSERT_TRUE(c.Save(&env, "empty").ok());
  auto loaded = Collection::Load(&env, "empty");
  ASSERT_TRUE(loaded.ok());
  EXPECT_TRUE(loaded->empty());
}

TEST(CollectionTest, LoadWithoutImageSidecarStillWorks) {
  MemEnv env;
  Collection c;
  c.Append(1, Vec24(0.5f), 42);
  ASSERT_TRUE(c.Save(&env, "col").ok());
  ASSERT_TRUE(env.DeleteFile("col.img").ok());
  auto loaded = Collection::Load(&env, "col");
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->Image(0), 0u);  // default
}

TEST(CollectionTest, CustomDimension) {
  MemEnv env;
  Collection c(8);
  c.Append(5, std::vector<float>(8, 1.5f));
  ASSERT_TRUE(c.Save(&env, "c8").ok());
  EXPECT_EQ(*env.GetFileSize("c8"), DescriptorRecordBytes(8));
  auto loaded = Collection::Load(&env, "c8", 8);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->dim(), 8u);
  EXPECT_FLOAT_EQ(loaded->Vector(0)[7], 1.5f);
}

}  // namespace
}  // namespace qvt
