#include "util/table.h"

#include <sstream>

#include <gtest/gtest.h>

namespace qvt {
namespace {

TEST(TablePrinterTest, AlignsColumns) {
  TablePrinter table({"name", "value"});
  table.AddRow({"a", "1"});
  table.AddRow({"longer", "22"});
  std::ostringstream os;
  table.Print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("longer"), std::string::npos);
  // Header and separator and two rows.
  EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 4);
}

TEST(TablePrinterTest, PadsShortRows) {
  TablePrinter table({"a", "b", "c"});
  table.AddRow({"only"});
  std::ostringstream os;
  table.Print(os);
  EXPECT_EQ(table.num_rows(), 1u);
}

TEST(TablePrinterTest, NumFormatsPrecision) {
  EXPECT_EQ(TablePrinter::Num(3.14159, 2), "3.14");
  EXPECT_EQ(TablePrinter::Num(3.0, 0), "3");
  EXPECT_EQ(TablePrinter::Num(-1.5, 1), "-1.5");
}

TEST(TablePrinterTest, CsvEscapesSpecials) {
  TablePrinter table({"x", "y"});
  table.AddRow({"a,b", "quote\"inside"});
  std::ostringstream os;
  table.PrintCsv(os);
  EXPECT_EQ(os.str(), "x,y\n\"a,b\",\"quote\"\"inside\"\n");
}

TEST(SeriesPrinterTest, MergesXAcrossSeries) {
  SeriesPrinter series("n");
  const size_t a = series.AddSeries("alpha");
  const size_t b = series.AddSeries("beta");
  series.AddPoint(a, 1, 10);
  series.AddPoint(a, 2, 20);
  series.AddPoint(b, 2, 200);
  series.AddPoint(b, 3, 300);
  std::ostringstream os;
  series.Print(os, 0);
  const std::string out = os.str();
  // x=1 has beta missing; x=3 has alpha missing.
  EXPECT_NE(out.find("alpha"), std::string::npos);
  EXPECT_NE(out.find("-"), std::string::npos);
  EXPECT_NE(out.find("300"), std::string::npos);
  // 3 data rows + header + separator.
  EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 5);
}

TEST(SeriesPrinterTest, SortsByX) {
  SeriesPrinter series("x");
  const size_t s = series.AddSeries("s");
  series.AddPoint(s, 5, 50);
  series.AddPoint(s, 1, 10);
  std::ostringstream os;
  series.Print(os, 0);
  const std::string out = os.str();
  EXPECT_LT(out.find("10"), out.find("50"));
}

}  // namespace
}  // namespace qvt
