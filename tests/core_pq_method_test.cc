// The "pq" search method: compressed ADC first pass + exact rerank. Covers
// the determinism acceptance bars (bit-identical results across SIMD
// backends, build thread counts, and the file-based open), the rerank
// behaviors (chunk file, collection gather, ADC-only), recall against the
// exact scan, and the argument-validation surface.

#include "core/pq_method.h"

#include <cmath>
#include <cstring>
#include <optional>
#include <vector>

#include <gtest/gtest.h>

#include "cluster/pq.h"
#include "cluster/srtree_chunker.h"
#include "core/chunk_index.h"
#include "core/search_method.h"
#include "descriptor/generator.h"
#include "geometry/kernels.h"
#include "storage/pq_file.h"
#include "util/logging.h"
#include "util/parallel_for.h"
#include "util/random.h"

namespace qvt {
namespace {

struct PqFixture {
  MemEnv env;
  Collection collection;
  std::optional<ChunkIndex> index;
  std::vector<std::vector<float>> queries;

  explicit PqFixture(uint64_t seed = 23, size_t num_images = 40) {
    GeneratorConfig config;
    config.num_images = num_images;
    config.descriptors_per_image = 20;
    config.num_modes = 6;
    config.seed = seed;
    collection = GenerateCollection(config);
    SrTreeChunker chunker(80);
    auto chunking = chunker.FormChunks(collection);
    QVT_CHECK(chunking.ok());
    auto built = ChunkIndex::Build(collection, *chunking, &env,
                                   ChunkIndexPaths::ForBase("idx"));
    QVT_CHECK(built.ok());
    index.emplace(std::move(built).value());

    Rng rng(101);
    for (size_t q = 0; q < 12; ++q) {
      const size_t pos = rng.Uniform(collection.size());
      std::vector<float> query(collection.Vector(pos).begin(),
                               collection.Vector(pos).end());
      for (float& v : query) {
        v += static_cast<float>(rng.UniformDouble(-0.5, 0.5));
      }
      queries.push_back(std::move(query));
    }
  }

  MethodContext Context(bool with_index = true) const {
    MethodContext context;
    context.collection = &collection;
    if (with_index) context.index = &*index;
    context.env = const_cast<MemEnv*>(&env);
    return context;
  }
};

std::unique_ptr<SearchMethod> MakePrepared(const MethodContext& context,
                                           std::string_view params = "") {
  auto method = MethodRegistry::Global().Create("pq", context, params);
  EXPECT_TRUE(method.ok()) << method.status().message();
  if (!method.ok()) return nullptr;
  const Status prepared = (*method)->Prepare();
  EXPECT_TRUE(prepared.ok()) << prepared.message();
  if (!prepared.ok()) return nullptr;
  return std::move(*method);
}

void ExpectBitIdentical(const std::vector<Neighbor>& a,
                        const std::vector<Neighbor>& b, const char* label) {
  ASSERT_EQ(a.size(), b.size()) << label;
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].id, b[i].id) << label << " rank " << i;
    EXPECT_EQ(std::memcmp(&a[i].distance, &b[i].distance, sizeof(double)), 0)
        << label << " rank " << i;
  }
}

struct BackendGuard {
  ~BackendGuard() { kernels::ResetBackendForTesting(); }
};

struct BuildThreadsGuard {
  ~BuildThreadsGuard() { SetBuildThreads(0); }
};

std::vector<kernels::Backend> SupportedBackends() {
  std::vector<kernels::Backend> backends;
  for (const kernels::Backend b :
       {kernels::Backend::kScalar, kernels::Backend::kSse2,
        kernels::Backend::kAvx2, kernels::Backend::kNeon}) {
    if (kernels::BackendSupported(b)) backends.push_back(b);
  }
  return backends;
}

TEST(PqMethodTest, BitIdenticalAcrossSimdBackends) {
  const PqFixture fx;
  BackendGuard guard;
  std::vector<std::vector<Neighbor>> reference;
  bool first = true;
  for (const kernels::Backend backend : SupportedBackends()) {
    SCOPED_TRACE(kernels::BackendName(backend));
    kernels::SetBackendForTesting(backend);
    auto method = MakePrepared(fx.Context());
    for (size_t q = 0; q < fx.queries.size(); ++q) {
      auto result = method->Search(fx.queries[q], 10);
      ASSERT_TRUE(result.ok()) << result.status().message();
      if (first) {
        reference.push_back(result->neighbors);
      } else {
        ExpectBitIdentical(reference[q], result->neighbors,
                           kernels::BackendName(backend));
      }
    }
    first = false;
  }
}

TEST(PqMethodTest, BitIdenticalAcrossBuildThreadCounts) {
  const PqFixture fx;
  BuildThreadsGuard guard;
  std::vector<std::vector<Neighbor>> reference;
  bool first = true;
  for (const size_t threads : {1u, 2u, 4u, 8u}) {
    SCOPED_TRACE(threads);
    SetBuildThreads(threads);
    auto method = MakePrepared(fx.Context());
    for (size_t q = 0; q < fx.queries.size(); ++q) {
      auto result = method->Search(fx.queries[q], 10);
      ASSERT_TRUE(result.ok()) << result.status().message();
      if (first) {
        reference.push_back(result->neighbors);
      } else {
        ExpectBitIdentical(reference[q], result->neighbors, "threads");
      }
    }
    first = false;
  }
}

TEST(PqMethodTest, FileBackedMethodMatchesTrainedMethodBothOpenModes) {
  const PqFixture fx;
  // Train + encode out-of-band, write the QVTPQC01 file the method will
  // open, and pin the file-backed method to the trained-in-process one.
  PqConfig config;
  auto codebook = TrainPq(fx.collection, config);
  ASSERT_TRUE(codebook.ok()) << codebook.status().message();
  auto codes = PqEncode(fx.collection, *codebook);
  ASSERT_TRUE(codes.ok()) << codes.status().message();
  MemEnv* env = const_cast<MemEnv*>(&fx.env);
  ASSERT_TRUE(WritePqFile(env, "compressed.pqc", codebook->dim, codebook->m,
                          codebook->ksub, codebook->centroids, *codes,
                          fx.collection.Ids())
                  .ok());

  auto trained = MakePrepared(fx.Context());
  auto from_file = MakePrepared(fx.Context(), "file=compressed.pqc");
  ASSERT_NE(from_file, nullptr);
  for (const auto& query : fx.queries) {
    auto a = trained->Search(query, 10);
    auto b = from_file->Search(query, 10);
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    ExpectBitIdentical(a->neighbors, b->neighbors, "file-backed");
  }
}

TEST(PqMethodTest, RerankDepthsConvergeOnExactScan) {
  const PqFixture fx;
  auto exact = MethodRegistry::Global().Create("exact-scan", fx.Context());
  ASSERT_TRUE(exact.ok());
  ASSERT_TRUE((*exact)->Prepare().ok());

  double best_recall = 0.0;
  for (const char* params : {"rerank=0", "rerank=32", "rerank=512"}) {
    auto method = MakePrepared(fx.Context(), params);
    ASSERT_NE(method, nullptr) << params;
    size_t hits = 0;
    size_t total = 0;
    for (const auto& query : fx.queries) {
      auto truth = (*exact)->Search(query, 10);
      auto got = method->Search(query, 10);
      ASSERT_TRUE(truth.ok());
      ASSERT_TRUE(got.ok()) << params;
      for (const Neighbor& n : truth->neighbors) {
        ++total;
        for (const Neighbor& m : got->neighbors) {
          if (m.id == n.id) {
            ++hits;
            break;
          }
        }
      }
    }
    const double recall = static_cast<double>(hits) /
                          static_cast<double>(total);
    best_recall = std::max(best_recall, recall);
  }
  // With R = 512 on an 800-row collection the rerank covers well over the
  // candidate set the exact top-10 lives in.
  EXPECT_GE(best_recall, 0.95);
}

TEST(PqMethodTest, ChunkRerankAndCollectionRerankAgree) {
  const PqFixture fx;
  auto with_index = MakePrepared(fx.Context());
  auto without_index = MakePrepared(fx.Context(/*with_index=*/false));
  ASSERT_NE(without_index, nullptr);
  for (const auto& query : fx.queries) {
    auto a = with_index->Search(query, 10);
    auto b = without_index->Search(query, 10);
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    // The chunk file stores the same float payload the collection holds, so
    // the two rerank sources must agree bitwise.
    ExpectBitIdentical(a->neighbors, b->neighbors, "rerank source");
    EXPECT_GT(a->telemetry.chunks_read, 0u);
    EXPECT_EQ(b->telemetry.chunks_read, 0u);
  }
}

TEST(PqMethodTest, TelemetryAccountsForCompressedScanAndRerank) {
  const PqFixture fx;
  auto method = MakePrepared(fx.Context(), "rerank=64");
  ASSERT_NE(method, nullptr);
  auto result = method->Search(fx.queries[0], 10);
  ASSERT_TRUE(result.ok());
  const QueryTelemetry& t = result->telemetry;
  EXPECT_EQ(t.index_entries_scanned, fx.collection.size());
  EXPECT_EQ(t.candidates_examined, 64u);
  EXPECT_GT(t.descriptors_scanned, 0u);
  EXPECT_LE(t.descriptors_scanned, 64u);
  EXPECT_GT(t.bytes_read, 0u);
  EXPECT_GT(t.probes, 0u);
  EXPECT_FALSE(t.exact);
  EXPECT_GE(t.wall_micros, t.plan.wall_micros + t.scan.wall_micros +
                               t.refine.wall_micros);
}

TEST(PqMethodTest, AdcOnlyModeReadsNothing) {
  const PqFixture fx;
  auto method = MakePrepared(fx.Context(), "rerank=0");
  ASSERT_NE(method, nullptr);
  auto result = method->Search(fx.queries[0], 10);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->telemetry.chunks_read, 0u);
  EXPECT_EQ(result->telemetry.descriptors_scanned, 0u);
  // Bytes touched are exactly the candidate code rows (m bytes each).
  EXPECT_EQ(result->telemetry.bytes_read, 10u * 8u);
  ASSERT_EQ(result->neighbors.size(), 10u);
  for (size_t i = 1; i < result->neighbors.size(); ++i) {
    EXPECT_LE(result->neighbors[i - 1].distance,
              result->neighbors[i].distance);
  }
}

TEST(PqMethodTest, ResidentBytesCoverCodesAndRouting) {
  const PqFixture fx;
  auto method = MakePrepared(fx.Context());
  auto* pq = dynamic_cast<PqMethod*>(method.get());
  ASSERT_NE(pq, nullptr);
  // Codes alone are size() * m bytes; codebooks, ids, and routing come on
  // top.
  EXPECT_GE(pq->ResidentBytes(), fx.collection.size() * 8);
}

TEST(PqMethodTest, InvalidArgumentsRejected) {
  const PqFixture fx;
  const MethodRegistry& registry = MethodRegistry::Global();
  EXPECT_FALSE(registry.Create("pq", fx.Context(), "m=0").ok());
  EXPECT_FALSE(registry.Create("pq", fx.Context(), "ksub=0").ok());
  EXPECT_FALSE(registry.Create("pq", fx.Context(), "ksub=257").ok());
  EXPECT_FALSE(registry.Create("pq", fx.Context(), "bogus=1").ok());
  MethodContext empty;
  EXPECT_FALSE(registry.Create("pq", empty).ok());

  // m=5 does not divide 24: surfaces at Prepare (training time).
  auto bad_m = registry.Create("pq", fx.Context(), "m=5");
  ASSERT_TRUE(bad_m.ok());
  EXPECT_TRUE((*bad_m)->Prepare().IsInvalidArgument());

  auto method = MakePrepared(fx.Context());
  EXPECT_TRUE(method->Search(fx.queries[0], 0).status().IsInvalidArgument());
  std::vector<float> short_query(5, 0.0f);
  EXPECT_TRUE(
      method->Search(short_query, 10).status().IsInvalidArgument());
  EXPECT_TRUE(method->Search(fx.queries[0], 10, StopRule::MaxChunks(2))
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(
      method->SearchRange(fx.queries[0], 1.0, StopRule::Exact())
          .status()
          .IsUnimplemented());
}

}  // namespace
}  // namespace qvt
