#include "core/medrank.h"

#include <gtest/gtest.h>

#include "core/exact_scan.h"
#include "descriptor/generator.h"
#include "util/random.h"

namespace qvt {
namespace {

Collection Synthetic(uint64_t seed = 15) {
  GeneratorConfig config;
  config.num_images = 50;
  config.descriptors_per_image = 30;
  config.num_modes = 8;
  config.seed = seed;
  return GenerateCollection(config);
}

TEST(MedrankTest, ReturnsRequestedCount) {
  const Collection c = Synthetic();
  const MedrankIndex index = MedrankIndex::Build(&c, MedrankConfig{});
  auto result = index.Search(c.Vector(10), 15);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->size(), 15u);
}

TEST(MedrankTest, SelfQueryEmitsSelfFirst) {
  const Collection c = Synthetic();
  const MedrankIndex index = MedrankIndex::Build(&c, MedrankConfig{});
  // The query point itself has rank 0 on every line, so it must be the
  // first to reach the median count.
  for (size_t pos : {0u, 100u, 500u}) {
    auto result = index.Search(c.Vector(pos), 3);
    ASSERT_TRUE(result.ok());
    ASSERT_FALSE(result->empty());
    EXPECT_EQ(result->front().id, c.Id(pos));
    EXPECT_DOUBLE_EQ(result->front().distance, 0.0);
  }
}

TEST(MedrankTest, HighRecallOnClusteredData) {
  const Collection c = Synthetic();
  MedrankConfig config;
  config.num_lines = 24;
  const MedrankIndex index = MedrankIndex::Build(&c, config);

  Rng rng(3);
  double recall_sum = 0.0;
  const size_t k = 10;
  const size_t trials = 20;
  for (size_t t = 0; t < trials; ++t) {
    const size_t pos = rng.Uniform(c.size());
    auto approx = index.Search(c.Vector(pos), k);
    ASSERT_TRUE(approx.ok());
    const auto exact = ExactScan(c, c.Vector(pos), k);
    size_t hits = 0;
    for (const Neighbor& a : *approx) {
      for (const Neighbor& e : exact) {
        if (a.id == e.id) {
          ++hits;
          break;
        }
      }
    }
    recall_sum += static_cast<double>(hits) / static_cast<double>(k);
  }
  // Medrank is approximate; on well-clustered data with 24 lines it should
  // recover well over half of the true neighbors.
  EXPECT_GT(recall_sum / static_cast<double>(trials), 0.5);
}

TEST(MedrankTest, MoreLinesImproveRecall) {
  const Collection c = Synthetic(16);
  MedrankConfig few;
  few.num_lines = 4;
  MedrankConfig many;
  many.num_lines = 32;
  const MedrankIndex few_index = MedrankIndex::Build(&c, few);
  const MedrankIndex many_index = MedrankIndex::Build(&c, many);

  Rng rng(5);
  const size_t k = 10;
  double few_recall = 0.0, many_recall = 0.0;
  for (size_t t = 0; t < 20; ++t) {
    const size_t pos = rng.Uniform(c.size());
    const auto exact = ExactScan(c, c.Vector(pos), k);
    for (auto [index, recall] :
         {std::make_pair(&few_index, &few_recall),
          std::make_pair(&many_index, &many_recall)}) {
      auto approx = index->Search(c.Vector(pos), k);
      ASSERT_TRUE(approx.ok());
      for (const Neighbor& a : *approx) {
        for (const Neighbor& e : exact) {
          if (a.id == e.id) {
            *recall += 1.0;
            break;
          }
        }
      }
    }
  }
  EXPECT_GE(many_recall, few_recall);
}

TEST(MedrankTest, StatsCountSortedAccesses) {
  const Collection c = Synthetic();
  const MedrankIndex index = MedrankIndex::Build(&c, MedrankConfig{});
  QueryTelemetry telemetry;
  auto result = index.Search(c.Vector(0), 5, &telemetry);
  ASSERT_TRUE(result.ok());
  EXPECT_GT(telemetry.index_entries_scanned, 0u);
  EXPECT_EQ(telemetry.probes, index.num_lines());
  // Emitting 5 neighbors at median frequency needs at least 5 * lines/2
  // accesses.
  EXPECT_GE(telemetry.index_entries_scanned, 5 * index.num_lines() / 2);
}

TEST(MedrankTest, InvalidArgumentsRejected) {
  const Collection c = Synthetic();
  const MedrankIndex index = MedrankIndex::Build(&c, MedrankConfig{});
  EXPECT_TRUE(index.Search(c.Vector(0), 0).status().IsInvalidArgument());
  EXPECT_TRUE(
      index.Search(c.Vector(0), c.size() + 1).status().IsInvalidArgument());
  std::vector<float> wrong(3, 0.0f);
  EXPECT_TRUE(index.Search(wrong, 5).status().IsInvalidArgument());
}

TEST(MedrankTest, FullFrequencyStillTerminates) {
  const Collection c = Synthetic();
  MedrankConfig config;
  config.min_frequency = 1.0;  // must be seen on every line
  const MedrankIndex index = MedrankIndex::Build(&c, config);
  auto result = index.Search(c.Vector(42), 5);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->size(), 5u);
  EXPECT_EQ(result->front().id, c.Id(42));
}

TEST(MedrankTest, DeterministicForSeed) {
  const Collection c = Synthetic();
  MedrankConfig config;
  config.seed = 9;
  const MedrankIndex a = MedrankIndex::Build(&c, config);
  const MedrankIndex b = MedrankIndex::Build(&c, config);
  auto ra = a.Search(c.Vector(7), 10);
  auto rb = b.Search(c.Vector(7), 10);
  ASSERT_TRUE(ra.ok());
  ASSERT_TRUE(rb.ok());
  for (size_t i = 0; i < 10; ++i) {
    EXPECT_EQ((*ra)[i].id, (*rb)[i].id);
  }
}

}  // namespace
}  // namespace qvt
