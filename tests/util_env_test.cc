#include "util/env.h"

#include <cstring>
#include <filesystem>
#include <string>

#include <gtest/gtest.h>

namespace qvt {
namespace {

class EnvRoundTripTest : public ::testing::TestWithParam<bool> {
 protected:
  void SetUp() override {
    if (GetParam()) {
      env_ = Env::Posix();
      dir_ = std::filesystem::temp_directory_path() /
             ("qvt_env_test_" + std::to_string(::getpid()));
      std::filesystem::create_directories(dir_);
    } else {
      mem_env_ = std::make_unique<MemEnv>();
      env_ = mem_env_.get();
      dir_ = "mem";
    }
  }

  void TearDown() override {
    if (GetParam()) std::filesystem::remove_all(dir_);
  }

  std::string Path(const std::string& name) { return (dir_ / name).string(); }

  Env* env_ = nullptr;
  std::unique_ptr<MemEnv> mem_env_;
  std::filesystem::path dir_;
};

TEST_P(EnvRoundTripTest, WriteThenRead) {
  const std::string data = "hello chunk index";
  ASSERT_TRUE(
      WriteFileBytes(env_, Path("f"), data.data(), data.size()).ok());
  auto read = ReadFileBytes(env_, Path("f"));
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(std::string(read->begin(), read->end()), data);
}

TEST_P(EnvRoundTripTest, PositionalRead) {
  const std::string data = "0123456789";
  ASSERT_TRUE(
      WriteFileBytes(env_, Path("f"), data.data(), data.size()).ok());
  auto file = env_->NewRandomAccessFile(Path("f"));
  ASSERT_TRUE(file.ok());
  char buf[4];
  ASSERT_TRUE((*file)->Read(3, 4, buf).ok());
  EXPECT_EQ(std::string(buf, 4), "3456");
  EXPECT_EQ((*file)->Size(), 10u);
}

TEST_P(EnvRoundTripTest, ReadPastEofFails) {
  ASSERT_TRUE(WriteFileBytes(env_, Path("f"), "abc", 3).ok());
  auto file = env_->NewRandomAccessFile(Path("f"));
  ASSERT_TRUE(file.ok());
  char buf[8];
  EXPECT_TRUE((*file)->Read(1, 8, buf).IsOutOfRange());
}

TEST_P(EnvRoundTripTest, MissingFileFailsToOpen) {
  EXPECT_FALSE(env_->NewRandomAccessFile(Path("missing")).ok());
  EXPECT_FALSE(env_->FileExists(Path("missing")));
}

TEST_P(EnvRoundTripTest, OverwriteTruncates) {
  ASSERT_TRUE(WriteFileBytes(env_, Path("f"), "long content", 12).ok());
  ASSERT_TRUE(WriteFileBytes(env_, Path("f"), "hi", 2).ok());
  auto size = env_->GetFileSize(Path("f"));
  ASSERT_TRUE(size.ok());
  EXPECT_EQ(*size, 2u);
}

TEST_P(EnvRoundTripTest, DeleteRemoves) {
  ASSERT_TRUE(WriteFileBytes(env_, Path("f"), "x", 1).ok());
  EXPECT_TRUE(env_->FileExists(Path("f")));
  ASSERT_TRUE(env_->DeleteFile(Path("f")).ok());
  EXPECT_FALSE(env_->FileExists(Path("f")));
  EXPECT_TRUE(env_->DeleteFile(Path("f")).IsIoError() ||
              env_->DeleteFile(Path("f")).IsNotFound());
}

TEST_P(EnvRoundTripTest, AppendAccumulates) {
  auto file = env_->NewWritableFile(Path("f"));
  ASSERT_TRUE(file.ok());
  ASSERT_TRUE((*file)->Append("ab", 2).ok());
  ASSERT_TRUE((*file)->Append("cd", 2).ok());
  EXPECT_EQ((*file)->Size(), 4u);
  ASSERT_TRUE((*file)->Close().ok());
  auto read = ReadFileBytes(env_, Path("f"));
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(std::string(read->begin(), read->end()), "abcd");
}

TEST_P(EnvRoundTripTest, DoubleCloseFails) {
  auto file = env_->NewWritableFile(Path("f"));
  ASSERT_TRUE(file.ok());
  ASSERT_TRUE((*file)->Close().ok());
  EXPECT_TRUE((*file)->Close().IsFailedPrecondition());
}

INSTANTIATE_TEST_SUITE_P(MemAndPosix, EnvRoundTripTest,
                         ::testing::Values(false, true),
                         [](const auto& info) {
                           return info.param ? "Posix" : "Mem";
                         });

TEST(IoStatsEnvTest, CountsReadsAndWrites) {
  MemEnv mem;
  IoStats stats;
  IoStatsEnv env(&mem, &stats);

  ASSERT_TRUE(WriteFileBytes(&env, "f", "hello", 5).ok());
  EXPECT_EQ(stats.writes, 1u);
  EXPECT_EQ(stats.bytes_written, 5u);
  EXPECT_EQ(stats.files_opened, 1u);

  auto read = ReadFileBytes(&env, "f");
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(stats.reads, 1u);
  EXPECT_EQ(stats.bytes_read, 5u);
  EXPECT_EQ(stats.files_opened, 2u);

  stats.Reset();
  EXPECT_EQ(stats.reads, 0u);
  EXPECT_EQ(stats.bytes_written, 0u);
}

TEST(MemEnvTest, FilesAreIndependent) {
  MemEnv env;
  ASSERT_TRUE(WriteFileBytes(&env, "a", "1", 1).ok());
  ASSERT_TRUE(WriteFileBytes(&env, "b", "22", 2).ok());
  EXPECT_EQ(*env.GetFileSize("a"), 1u);
  EXPECT_EQ(*env.GetFileSize("b"), 2u);
}

}  // namespace
}  // namespace qvt
