#include "util/env.h"

#include <cstring>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace qvt {
namespace {

class EnvRoundTripTest : public ::testing::TestWithParam<bool> {
 protected:
  void SetUp() override {
    if (GetParam()) {
      env_ = Env::Posix();
      dir_ = std::filesystem::temp_directory_path() /
             ("qvt_env_test_" + std::to_string(::getpid()));
      std::filesystem::create_directories(dir_);
    } else {
      mem_env_ = std::make_unique<MemEnv>();
      env_ = mem_env_.get();
      dir_ = "mem";
    }
  }

  void TearDown() override {
    if (GetParam()) std::filesystem::remove_all(dir_);
  }

  std::string Path(const std::string& name) { return (dir_ / name).string(); }

  Env* env_ = nullptr;
  std::unique_ptr<MemEnv> mem_env_;
  std::filesystem::path dir_;
};

TEST_P(EnvRoundTripTest, WriteThenRead) {
  const std::string data = "hello chunk index";
  ASSERT_TRUE(
      WriteFileBytes(env_, Path("f"), data.data(), data.size()).ok());
  auto read = ReadFileBytes(env_, Path("f"));
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(std::string(read->begin(), read->end()), data);
}

TEST_P(EnvRoundTripTest, PositionalRead) {
  const std::string data = "0123456789";
  ASSERT_TRUE(
      WriteFileBytes(env_, Path("f"), data.data(), data.size()).ok());
  auto file = env_->NewRandomAccessFile(Path("f"));
  ASSERT_TRUE(file.ok());
  char buf[4];
  ASSERT_TRUE((*file)->Read(3, 4, buf).ok());
  EXPECT_EQ(std::string(buf, 4), "3456");
  EXPECT_EQ((*file)->Size(), 10u);
}

TEST_P(EnvRoundTripTest, ReadPastEofFails) {
  ASSERT_TRUE(WriteFileBytes(env_, Path("f"), "abc", 3).ok());
  auto file = env_->NewRandomAccessFile(Path("f"));
  ASSERT_TRUE(file.ok());
  char buf[8];
  EXPECT_TRUE((*file)->Read(1, 8, buf).IsOutOfRange());
}

TEST_P(EnvRoundTripTest, MissingFileFailsToOpen) {
  EXPECT_FALSE(env_->NewRandomAccessFile(Path("missing")).ok());
  EXPECT_FALSE(env_->FileExists(Path("missing")));
}

TEST_P(EnvRoundTripTest, OverwriteTruncates) {
  ASSERT_TRUE(WriteFileBytes(env_, Path("f"), "long content", 12).ok());
  ASSERT_TRUE(WriteFileBytes(env_, Path("f"), "hi", 2).ok());
  auto size = env_->GetFileSize(Path("f"));
  ASSERT_TRUE(size.ok());
  EXPECT_EQ(*size, 2u);
}

TEST_P(EnvRoundTripTest, DeleteRemoves) {
  ASSERT_TRUE(WriteFileBytes(env_, Path("f"), "x", 1).ok());
  EXPECT_TRUE(env_->FileExists(Path("f")));
  ASSERT_TRUE(env_->DeleteFile(Path("f")).ok());
  EXPECT_FALSE(env_->FileExists(Path("f")));
  // Unified contract: a missing path is NotFound in every Env.
  EXPECT_TRUE(env_->DeleteFile(Path("f")).IsNotFound());
}

TEST_P(EnvRoundTripTest, GetFileSizeOnMissingIsNotFound) {
  const auto size = env_->GetFileSize(Path("missing"));
  ASSERT_FALSE(size.ok());
  EXPECT_TRUE(size.status().IsNotFound());
}

TEST_P(EnvRoundTripTest, AppendAccumulates) {
  auto file = env_->NewWritableFile(Path("f"));
  ASSERT_TRUE(file.ok());
  ASSERT_TRUE((*file)->Append("ab", 2).ok());
  ASSERT_TRUE((*file)->Append("cd", 2).ok());
  EXPECT_EQ((*file)->Size(), 4u);
  ASSERT_TRUE((*file)->Close().ok());
  auto read = ReadFileBytes(env_, Path("f"));
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(std::string(read->begin(), read->end()), "abcd");
}

TEST_P(EnvRoundTripTest, RenameMovesContents) {
  ASSERT_TRUE(WriteFileBytes(env_, Path("tmp"), "payload", 7).ok());
  ASSERT_TRUE(env_->RenameFile(Path("tmp"), Path("final")).ok());
  EXPECT_FALSE(env_->FileExists(Path("tmp")));
  auto read = ReadFileBytes(env_, Path("final"));
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(std::string(read->begin(), read->end()), "payload");
}

TEST_P(EnvRoundTripTest, RenameReplacesExistingTarget) {
  ASSERT_TRUE(WriteFileBytes(env_, Path("old"), "old", 3).ok());
  ASSERT_TRUE(WriteFileBytes(env_, Path("new"), "freshest", 8).ok());
  ASSERT_TRUE(env_->RenameFile(Path("new"), Path("old")).ok());
  auto read = ReadFileBytes(env_, Path("old"));
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(std::string(read->begin(), read->end()), "freshest");
  EXPECT_FALSE(env_->FileExists(Path("new")));
}

TEST_P(EnvRoundTripTest, RenameMissingSourceIsNotFound) {
  EXPECT_TRUE(env_->RenameFile(Path("ghost"), Path("anywhere")).IsNotFound());
}

TEST_P(EnvRoundTripTest, MemoryMappedFileSeesContents) {
  const std::string data = "mapped payload bytes";
  ASSERT_TRUE(WriteFileBytes(env_, Path("f"), data.data(), data.size()).ok());
  auto mapped = env_->NewMemoryMappedFile(Path("f"));
  ASSERT_TRUE(mapped.ok());
  ASSERT_EQ((*mapped)->size(), data.size());
  EXPECT_EQ(std::string(reinterpret_cast<const char*>((*mapped)->data()),
                        (*mapped)->size()),
            data);
}

TEST_P(EnvRoundTripTest, MemoryMappedMissingFileIsNotFound) {
  const auto mapped = env_->NewMemoryMappedFile(Path("missing"));
  ASSERT_FALSE(mapped.ok());
  EXPECT_TRUE(mapped.status().IsNotFound());
}

TEST_P(EnvRoundTripTest, MemoryMappedEmptyFileHasZeroSize) {
  ASSERT_TRUE(WriteFileBytes(env_, Path("f"), "", 0).ok());
  auto mapped = env_->NewMemoryMappedFile(Path("f"));
  ASSERT_TRUE(mapped.ok());
  EXPECT_EQ((*mapped)->size(), 0u);
}

TEST_P(EnvRoundTripTest, MemoryMappedBaseIsSectionAligned) {
  // The on-disk formats cast section pointers to f32/f64/record types, so
  // every mapping base must be at least 64-byte-aligned (pages on the mmap
  // path, std::aligned_alloc on the emulated one).
  ASSERT_TRUE(WriteFileBytes(env_, Path("f"), "0123456789", 10).ok());
  auto mapped = env_->NewMemoryMappedFile(Path("f"));
  ASSERT_TRUE(mapped.ok());
  EXPECT_EQ(reinterpret_cast<uintptr_t>((*mapped)->data()) % 64, 0u);
}

TEST_P(EnvRoundTripTest, MemoryMappedFileSurvivesDelete) {
  // POSIX keeps the mapping alive after unlink; the byte-copy emulation is
  // a snapshot by construction. Either way the bytes must stay readable.
  const std::string data = "stable after delete";
  ASSERT_TRUE(WriteFileBytes(env_, Path("f"), data.data(), data.size()).ok());
  auto mapped = env_->NewMemoryMappedFile(Path("f"));
  ASSERT_TRUE(mapped.ok());
  ASSERT_TRUE(env_->DeleteFile(Path("f")).ok());
  EXPECT_EQ(std::string(reinterpret_cast<const char*>((*mapped)->data()),
                        (*mapped)->size()),
            data);
}

TEST_P(EnvRoundTripTest, DoubleCloseFails) {
  auto file = env_->NewWritableFile(Path("f"));
  ASSERT_TRUE(file.ok());
  ASSERT_TRUE((*file)->Close().ok());
  EXPECT_TRUE((*file)->Close().IsFailedPrecondition());
}

INSTANTIATE_TEST_SUITE_P(MemAndPosix, EnvRoundTripTest,
                         ::testing::Values(false, true),
                         [](const auto& info) {
                           return info.param ? "Posix" : "Mem";
                         });

TEST(IoStatsEnvTest, CountsReadsAndWrites) {
  MemEnv mem;
  IoStats stats;
  IoStatsEnv env(&mem, &stats);

  ASSERT_TRUE(WriteFileBytes(&env, "f", "hello", 5).ok());
  EXPECT_EQ(stats.writes, 1u);
  EXPECT_EQ(stats.bytes_written, 5u);
  EXPECT_EQ(stats.files_opened, 1u);

  auto read = ReadFileBytes(&env, "f");
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(stats.reads, 1u);
  EXPECT_EQ(stats.bytes_read, 5u);
  EXPECT_EQ(stats.files_opened, 2u);

  stats.Reset();
  EXPECT_EQ(stats.reads, 0u);
  EXPECT_EQ(stats.bytes_written, 0u);
}

TEST(MemEnvTest, FilesAreIndependent) {
  MemEnv env;
  ASSERT_TRUE(WriteFileBytes(&env, "a", "1", 1).ok());
  ASSERT_TRUE(WriteFileBytes(&env, "b", "22", 2).ok());
  EXPECT_EQ(*env.GetFileSize("a"), 1u);
  EXPECT_EQ(*env.GetFileSize("b"), 2u);
}

// Thread-safety regression (run under -DQVT_SANITIZE=thread to make any
// data race fatal): writer threads create and rewrite private files while
// reader threads hammer a shared file and the registry with reads, stats,
// existence probes, renames, and deletes.
TEST(MemEnvTest, ConcurrentReadersAndWritersAreSafe) {
  MemEnv env;
  const std::string shared = "shared";
  const std::string payload(4096, 'q');
  ASSERT_TRUE(
      WriteFileBytes(&env, shared, payload.data(), payload.size()).ok());

  constexpr size_t kThreads = 8;
  constexpr size_t kRounds = 50;
  std::vector<std::thread> threads;
  for (size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      const std::string mine = "private_" + std::to_string(t);
      for (size_t round = 0; round < kRounds; ++round) {
        // Rewrite a private file (truncating re-open) and read it back.
        ASSERT_TRUE(
            WriteFileBytes(&env, mine, payload.data(), 16 + t + round).ok());
        auto mine_read = ReadFileBytes(&env, mine);
        ASSERT_TRUE(mine_read.ok());
        ASSERT_EQ(mine_read->size(), 16 + t + round);

        // Concurrent positional reads of the shared file.
        auto file = env.NewRandomAccessFile(shared);
        ASSERT_TRUE(file.ok());
        char buf[64];
        ASSERT_TRUE((*file)->Read((t * 97 + round) % 1024, sizeof buf, buf)
                        .ok());

        // Registry churn: probes, sizes, renames, deletes.
        env.FileExists(shared);
        ASSERT_TRUE(env.GetFileSize(shared).ok());
        const std::string tmp = mine + ".tmp";
        ASSERT_TRUE(WriteFileBytes(&env, tmp, "x", 1).ok());
        ASSERT_TRUE(env.RenameFile(tmp, mine + ".renamed").ok());
        ASSERT_TRUE(env.DeleteFile(mine + ".renamed").ok());
      }
    });
  }
  for (std::thread& t : threads) t.join();

  // The shared file was never written concurrently; it must be intact.
  auto read = ReadFileBytes(&env, shared);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(std::string(read->begin(), read->end()), payload);
}

// An open read handle must stay valid when the file is deleted or
// truncated underneath it — the unlinked-but-open POSIX lifetime MemEnv
// mirrors, exercised from two threads.
TEST(MemEnvTest, OpenHandleSurvivesDeleteAndTruncate) {
  MemEnv env;
  ASSERT_TRUE(WriteFileBytes(&env, "f", "0123456789", 10).ok());
  auto file = env.NewRandomAccessFile("f");
  ASSERT_TRUE(file.ok());

  std::thread mutator([&] {
    ASSERT_TRUE(WriteFileBytes(&env, "f", "zz", 2).ok());  // truncate
    ASSERT_TRUE(env.DeleteFile("f").ok());
  });
  for (size_t i = 0; i < 100; ++i) {
    char buf[10];
    ASSERT_TRUE((*file)->Read(0, sizeof buf, buf).ok());
    ASSERT_EQ(std::string(buf, sizeof buf), "0123456789");
  }
  mutator.join();
  EXPECT_FALSE(env.FileExists("f"));
}

}  // namespace
}  // namespace qvt
