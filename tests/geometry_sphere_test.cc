#include "geometry/sphere.h"

#include <gtest/gtest.h>

#include "geometry/vec.h"
#include "util/random.h"

namespace qvt {
namespace {

std::vector<float> RandomPoint(Rng* rng, size_t dim, double scale = 10.0) {
  std::vector<float> v(dim);
  for (auto& x : v) x = static_cast<float>(rng->UniformDouble(-scale, scale));
  return v;
}

TEST(SphereTest, DistancesToPoint) {
  Sphere s({0, 0}, 2.0);
  std::vector<float> inside = {1, 0};
  std::vector<float> outside = {5, 0};
  EXPECT_DOUBLE_EQ(s.MinDistanceTo(inside), 0.0);
  EXPECT_DOUBLE_EQ(s.MinDistanceTo(outside), 3.0);
  EXPECT_DOUBLE_EQ(s.MaxDistanceTo(outside), 7.0);
  EXPECT_DOUBLE_EQ(s.CenterDistanceTo(outside), 5.0);
  EXPECT_TRUE(s.Contains(inside));
  EXPECT_FALSE(s.Contains(outside));
}

TEST(SphereTest, Intersects) {
  Sphere a({0, 0}, 1.0);
  Sphere b({3, 0}, 1.0);
  Sphere c({1.5, 0}, 1.0);
  EXPECT_FALSE(a.Intersects(b));
  EXPECT_TRUE(a.Intersects(c));
  EXPECT_TRUE(b.Intersects(c));
}

TEST(MergeSpheresTest, ContainmentReturnsContainer) {
  Sphere big({0, 0}, 10.0);
  Sphere small({1, 0}, 1.0);
  const Sphere merged = MergeSpheres(big, small);
  EXPECT_DOUBLE_EQ(merged.radius, 10.0);
  EXPECT_FLOAT_EQ(merged.center[0], 0.0f);
}

TEST(MergeSpheresTest, DisjointSpheresSpanBoth) {
  Sphere a({0, 0}, 1.0);
  Sphere b({10, 0}, 1.0);
  const Sphere merged = MergeSpheres(a, b);
  EXPECT_DOUBLE_EQ(merged.radius, 6.0);
  EXPECT_FLOAT_EQ(merged.center[0], 5.0f);
}

class SpherePropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SpherePropertyTest, MergedSphereCoversBoth) {
  Rng rng(GetParam());
  for (int iter = 0; iter < 100; ++iter) {
    Sphere a(RandomPoint(&rng, 5), rng.UniformDouble(0, 5));
    Sphere b(RandomPoint(&rng, 5), rng.UniformDouble(0, 5));
    const Sphere merged = MergeSpheres(a, b);
    // Check via support points: center +- radius along the center line and
    // along random directions.
    for (int trial = 0; trial < 10; ++trial) {
      const auto dir = RandomPoint(&rng, 5, 1.0);
      const double norm = vec::Norm(dir);
      if (norm < 1e-9) continue;
      for (const Sphere* s : {&a, &b}) {
        std::vector<float> support(5);
        for (size_t d = 0; d < 5; ++d) {
          support[d] = static_cast<float>(s->center[d] +
                                          dir[d] / norm * s->radius);
        }
        EXPECT_TRUE(merged.Contains(support, 1e-4));
      }
    }
  }
}

TEST_P(SpherePropertyTest, CentroidBoundingSphereCoversAllPoints) {
  Rng rng(GetParam() ^ 0xbeef);
  std::vector<std::vector<float>> points;
  for (int i = 0; i < 40; ++i) points.push_back(RandomPoint(&rng, 6));
  std::vector<std::span<const float>> spans(points.begin(), points.end());
  const Sphere s = CentroidBoundingSphere(spans, 6);
  double max_dist = 0;
  for (const auto& p : points) {
    EXPECT_TRUE(s.Contains(p, 1e-4));
    max_dist = std::max(max_dist, vec::Distance(s.center, p));
  }
  // The radius is minimal for that center: equal to the farthest point.
  EXPECT_NEAR(s.radius, max_dist, 1e-6);
}

TEST_P(SpherePropertyTest, RitterSphereCoversAllPointsAndIsReasonable) {
  Rng rng(GetParam() ^ 0xcafe);
  std::vector<std::vector<float>> points;
  for (int i = 0; i < 40; ++i) points.push_back(RandomPoint(&rng, 6));
  std::vector<std::span<const float>> spans(points.begin(), points.end());
  const Sphere ritter = RitterBoundingSphere(spans, 6);
  const Sphere centroid = CentroidBoundingSphere(spans, 6);
  for (const auto& p : points) EXPECT_TRUE(ritter.Contains(p, 1e-4));
  // Ritter is usually tighter than the centroid sphere and never wildly
  // larger.
  EXPECT_LE(ritter.radius, centroid.radius * 1.3);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SpherePropertyTest,
                         ::testing::Values(11, 22, 33));

TEST(BoundingSphereTest, EmptyPointsGiveZeroSphere) {
  const Sphere s = CentroidBoundingSphere({}, 4);
  EXPECT_EQ(s.dim(), 4u);
  EXPECT_DOUBLE_EQ(s.radius, 0.0);
  const Sphere r = RitterBoundingSphere({}, 4);
  EXPECT_EQ(r.dim(), 4u);
}

TEST(BoundingSphereTest, SinglePointSphere) {
  std::vector<float> p = {3, 4};
  std::vector<std::span<const float>> spans = {p};
  const Sphere s = CentroidBoundingSphere(spans, 2);
  EXPECT_DOUBLE_EQ(s.radius, 0.0);
  EXPECT_FLOAT_EQ(s.center[0], 3.0f);
}

}  // namespace
}  // namespace qvt
