#include "util/parallel_for.h"

#include <atomic>
#include <cstdint>
#include <numeric>
#include <stdexcept>
#include <string>
#include <vector>

#include <gtest/gtest.h>

namespace qvt {
namespace {

/// Restores the environment/hardware default thread count on scope exit so a
/// test's SetBuildThreads override never leaks into other tests.
struct BuildThreadsGuard {
  ~BuildThreadsGuard() { SetBuildThreads(0); }
};

TEST(BuildThreadsTest, OverrideAndReset) {
  BuildThreadsGuard guard;
  SetBuildThreads(3);
  EXPECT_EQ(BuildThreads(), 3u);
  SetBuildThreads(7);
  EXPECT_EQ(BuildThreads(), 7u);
  SetBuildThreads(0);
  EXPECT_GE(BuildThreads(), 1u);
}

TEST(NumShardsTest, BoundaryCases) {
  EXPECT_EQ(internal::NumShards(0, 10), 0u);
  EXPECT_EQ(internal::NumShards(1, 10), 1u);
  EXPECT_EQ(internal::NumShards(10, 10), 1u);
  EXPECT_EQ(internal::NumShards(11, 10), 2u);
  EXPECT_EQ(internal::NumShards(100, 10), 10u);
  EXPECT_EQ(internal::NumShards(5, 0), 5u);  // grain 0 treated as 1
}

TEST(ParallelForTest, CoversEveryIndexExactlyOnce) {
  BuildThreadsGuard guard;
  for (size_t threads : {size_t{1}, size_t{2}, size_t{7}}) {
    SetBuildThreads(threads);
    const size_t n = 1003;  // not a multiple of the grain
    std::vector<int> hits(n, 0);
    ParallelFor(n, 64, [&](size_t begin, size_t end) {
      for (size_t i = begin; i < end; ++i) ++hits[i];
    });
    for (size_t i = 0; i < n; ++i) {
      ASSERT_EQ(hits[i], 1) << "index " << i << " at " << threads
                            << " threads";
    }
  }
}

TEST(ParallelForTest, ShardBoundariesDependOnlyOnGrain) {
  BuildThreadsGuard guard;
  // The same (n, grain) must yield the same shard decomposition at every
  // thread count: record the (begin, end) pairs and compare as sets.
  auto shards_at = [](size_t threads) {
    SetBuildThreads(threads);
    std::vector<std::pair<size_t, size_t>> shards(internal::NumShards(100, 8));
    ParallelFor(100, 8, [&](size_t begin, size_t end) {
      shards[begin / 8] = {begin, end};
    });
    return shards;
  };
  const auto serial = shards_at(1);
  EXPECT_EQ(shards_at(2), serial);
  EXPECT_EQ(shards_at(7), serial);
}

TEST(ParallelForTest, EmptyRangeAndSingleShardRunInline) {
  BuildThreadsGuard guard;
  SetBuildThreads(4);
  int calls = 0;
  ParallelFor(0, 16, [&](size_t, size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
  ParallelFor(10, 16, [&](size_t begin, size_t end) {
    ++calls;
    EXPECT_EQ(begin, 0u);
    EXPECT_EQ(end, 10u);
  });
  EXPECT_EQ(calls, 1);
}

TEST(ParallelReduceTest, FloatingPointSumIsThreadCountInvariant) {
  BuildThreadsGuard guard;
  // Values chosen so naive reassociation changes the result: mixing
  // magnitudes makes FP addition order-sensitive.
  std::vector<double> values(4099);
  uint64_t state = 0x9e3779b97f4a7c15ULL;
  for (double& v : values) {
    state = state * 6364136223846793005ULL + 1442695040888963407ULL;
    v = static_cast<double>(state >> 11) * 1e-6 +
        static_cast<double>(state & 0xff) * 1e9;
  }
  auto sum_at = [&](size_t threads) {
    SetBuildThreads(threads);
    return ParallelReduce(
        values.size(), 128, 0.0,
        [&](size_t begin, size_t end) {
          return std::accumulate(values.begin() + begin, values.begin() + end,
                                 0.0);
        },
        [](double acc, double partial) { return acc + partial; });
  };
  const double serial = sum_at(1);
  // Bitwise equality, not near-equality: the determinism contract.
  EXPECT_EQ(sum_at(2), serial);
  EXPECT_EQ(sum_at(3), serial);
  EXPECT_EQ(sum_at(7), serial);
}

TEST(ParallelReduceTest, FoldsPartialsInShardIndexOrder) {
  BuildThreadsGuard guard;
  SetBuildThreads(5);
  // Each shard's partial is its own index; a non-commutative combine
  // (string append) exposes any out-of-order fold.
  const std::string folded = ParallelReduce(
      40, 4, std::string("init"),
      [](size_t begin, size_t) { return std::to_string(begin / 4); },
      [](std::string acc, const std::string& partial) {
        return acc + "," + partial;
      });
  EXPECT_EQ(folded, "init,0,1,2,3,4,5,6,7,8,9");
}

TEST(ParallelReduceTest, EmptyRangeReturnsInit) {
  BuildThreadsGuard guard;
  const int result = ParallelReduce(
      0, 8, 42, [](size_t, size_t) { return 0; },
      [](int acc, int partial) { return acc + partial; });
  EXPECT_EQ(result, 42);
}

TEST(ParallelForTest, RethrowsLowestIndexShardException) {
  BuildThreadsGuard guard;
  for (size_t threads : {size_t{1}, size_t{4}}) {
    SetBuildThreads(threads);
    std::atomic<int> shards_run{0};
    try {
      ParallelFor(80, 8, [&](size_t begin, size_t) {
        shards_run.fetch_add(1);
        const size_t shard = begin / 8;
        if (shard == 3 || shard == 7) {
          throw std::runtime_error("shard " + std::to_string(shard));
        }
      });
      FAIL() << "expected an exception";
    } catch (const std::runtime_error& e) {
      // Deterministic choice: the lowest-index failing shard wins, and the
      // failure did not abort the siblings.
      EXPECT_STREQ(e.what(), "shard 3");
      EXPECT_EQ(shards_run.load(), 10);
    }
  }
}

TEST(ParallelForStatusTest, ReturnsLowestIndexFailure) {
  BuildThreadsGuard guard;
  for (size_t threads : {size_t{1}, size_t{4}}) {
    SetBuildThreads(threads);
    const Status status =
        ParallelForStatus(80, 8, [&](size_t begin, size_t) {
          const size_t shard = begin / 8;
          if (shard == 5) return Status::InvalidArgument("shard 5");
          if (shard == 2) return Status::Internal("shard 2");
          return Status::OK();
        });
    EXPECT_FALSE(status.ok());
    EXPECT_EQ(status.message(), "shard 2");
  }
}

TEST(ParallelForStatusTest, OkWhenAllShardsSucceed) {
  BuildThreadsGuard guard;
  SetBuildThreads(4);
  std::atomic<int> shards_run{0};
  const Status status = ParallelForStatus(100, 10, [&](size_t, size_t) {
    shards_run.fetch_add(1);
    return Status::OK();
  });
  EXPECT_TRUE(status.ok());
  EXPECT_EQ(shards_run.load(), 10);
}

TEST(ParallelForTest, NestedCallsMakeProgress) {
  BuildThreadsGuard guard;
  SetBuildThreads(4);
  // Caller participation means nested helpers cannot deadlock even when
  // every pool worker is stuck inside an outer shard.
  std::atomic<int64_t> total{0};
  ParallelFor(8, 1, [&](size_t, size_t) {
    const int64_t inner = ParallelReduce(
        256, 16, int64_t{0},
        [](size_t begin, size_t end) {
          int64_t s = 0;
          for (size_t i = begin; i < end; ++i) s += static_cast<int64_t>(i);
          return s;
        },
        [](int64_t acc, int64_t partial) { return acc + partial; });
    total.fetch_add(inner);
  });
  EXPECT_EQ(total.load(), 8 * (255 * 256 / 2));
}

}  // namespace
}  // namespace qvt
