#include "core/chunk_index.h"

#include <cstdlib>
#include <cstring>

#include <gtest/gtest.h>

#include "cluster/round_robin.h"
#include "cluster/srtree_chunker.h"
#include "descriptor/generator.h"
#include "geometry/vec.h"

namespace qvt {
namespace {

Collection TestCollection(size_t images = 30) {
  GeneratorConfig config;
  config.num_images = images;
  config.descriptors_per_image = 25;
  config.num_modes = 6;
  config.seed = 8;
  return GenerateCollection(config);
}

TEST(ChunkIndexTest, BuildAndValidate) {
  MemEnv env;
  const Collection c = TestCollection();
  SrTreeChunker chunker(100);
  auto chunking = chunker.FormChunks(c);
  ASSERT_TRUE(chunking.ok());

  auto index = ChunkIndex::Build(c, *chunking, &env,
                                 ChunkIndexPaths::ForBase("idx"));
  ASSERT_TRUE(index.ok());
  EXPECT_EQ(index->num_chunks(), chunking->chunks.size());
  EXPECT_EQ(index->total_descriptors(), c.size());
  EXPECT_TRUE(index->Validate().ok());
}

TEST(ChunkIndexTest, OpenMatchesBuild) {
  MemEnv env;
  const Collection c = TestCollection();
  RoundRobinChunker chunker(64);
  auto chunking = chunker.FormChunks(c);
  ASSERT_TRUE(chunking.ok());
  const ChunkIndexPaths paths = ChunkIndexPaths::ForBase("idx");
  auto built = ChunkIndex::Build(c, *chunking, &env, paths);
  ASSERT_TRUE(built.ok());

  auto opened = ChunkIndex::Open(&env, paths);
  ASSERT_TRUE(opened.ok());
  ASSERT_EQ(opened->num_chunks(), built->num_chunks());
  for (size_t i = 0; i < opened->num_chunks(); ++i) {
    EXPECT_EQ(opened->location(i), built->location(i));
    EXPECT_DOUBLE_EQ(opened->radius(i), built->radius(i));
  }
  EXPECT_TRUE(opened->Validate().ok());
}

// The zero-copy mapped open and the deserializing open must expose exactly
// the same index: same header, and byte-identical centroid / radius /
// location columns.
TEST(ChunkIndexTest, MmapAndDeserializeOpensAreByteIdentical) {
  MemEnv env;
  const Collection c = TestCollection();
  SrTreeChunker chunker(80);
  auto chunking = chunker.FormChunks(c);
  ASSERT_TRUE(chunking.ok());
  const ChunkIndexPaths paths = ChunkIndexPaths::ForBase("idx");
  ASSERT_TRUE(ChunkIndex::Build(c, *chunking, &env, paths).ok());

  auto mapped =
      ChunkIndex::Open(&env, paths, kDescriptorDim, IndexOpenMode::kMmap);
  ASSERT_TRUE(mapped.ok());
  auto copied = ChunkIndex::Open(&env, paths, kDescriptorDim,
                                 IndexOpenMode::kDeserialize);
  ASSERT_TRUE(copied.ok());
  EXPECT_TRUE(mapped->mapped());
  EXPECT_FALSE(copied->mapped());

  ASSERT_EQ(mapped->num_chunks(), copied->num_chunks());
  ASSERT_EQ(mapped->dim(), copied->dim());
  const auto a = mapped->centroid_matrix();
  const auto b = copied->centroid_matrix();
  ASSERT_EQ(a.size(), b.size());
  EXPECT_EQ(std::memcmp(a.data(), b.data(), a.size_bytes()), 0);
  for (size_t i = 0; i < mapped->num_chunks(); ++i) {
    EXPECT_EQ(mapped->radius(i), copied->radius(i));
    EXPECT_EQ(mapped->location(i), copied->location(i));
  }
  // Both satisfy the kernel alignment contract and full validation.
  EXPECT_EQ(reinterpret_cast<uintptr_t>(a.data()) % 32, 0u);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(b.data()) % 32, 0u);
  EXPECT_TRUE(mapped->Validate().ok());
  EXPECT_TRUE(copied->Validate().ok());
}

TEST(ChunkIndexTest, ResolveOpenModeHonorsQvtMmap) {
  EXPECT_EQ(ResolveIndexOpenMode(IndexOpenMode::kMmap), IndexOpenMode::kMmap);
  EXPECT_EQ(ResolveIndexOpenMode(IndexOpenMode::kDeserialize),
            IndexOpenMode::kDeserialize);
  ::setenv("QVT_MMAP", "0", 1);
  EXPECT_EQ(ResolveIndexOpenMode(IndexOpenMode::kAuto),
            IndexOpenMode::kDeserialize);
  ::setenv("QVT_MMAP", "1", 1);
  EXPECT_EQ(ResolveIndexOpenMode(IndexOpenMode::kAuto), IndexOpenMode::kMmap);
  ::unsetenv("QVT_MMAP");
  EXPECT_EQ(ResolveIndexOpenMode(IndexOpenMode::kAuto), IndexOpenMode::kMmap);
}

TEST(ChunkIndexTest, OutliersAreExcluded) {
  MemEnv env;
  const Collection c = TestCollection();
  ChunkingResult chunking;
  chunking.chunks = {{0, 1, 2}, {3, 4}};
  for (size_t i = 5; i < c.size(); ++i) chunking.outliers.push_back(i);

  auto index = ChunkIndex::Build(c, chunking, &env,
                                 ChunkIndexPaths::ForBase("idx"));
  ASSERT_TRUE(index.ok());
  EXPECT_EQ(index->total_descriptors(), 5u);
  EXPECT_EQ(index->num_chunks(), 2u);
}

TEST(ChunkIndexTest, EntriesHaveExactMinimumBoundingRadius) {
  MemEnv env;
  const Collection c = TestCollection();
  SrTreeChunker chunker(50);
  auto chunking = chunker.FormChunks(c);
  ASSERT_TRUE(chunking.ok());
  auto index = ChunkIndex::Build(c, *chunking, &env,
                                 ChunkIndexPaths::ForBase("idx"));
  ASSERT_TRUE(index.ok());

  ChunkData chunk;
  for (size_t i = 0; i < index->num_chunks(); ++i) {
    ASSERT_TRUE(index->ReadChunk(i, &chunk).ok());
    double max_dist = 0;
    for (size_t d = 0; d < chunk.size(); ++d) {
      max_dist =
          std::max(max_dist, vec::Distance(index->centroid(i),
                                           chunk.Vector(d)));
    }
    // Radius is tight: equals the farthest member distance.
    EXPECT_NEAR(index->radius(i), max_dist, 1e-4);
  }
}

TEST(ChunkIndexTest, ReadChunkOutOfRange) {
  MemEnv env;
  const Collection c = TestCollection();
  RoundRobinChunker chunker(1000);
  auto chunking = chunker.FormChunks(c);
  ASSERT_TRUE(chunking.ok());
  auto index = ChunkIndex::Build(c, *chunking, &env,
                                 ChunkIndexPaths::ForBase("idx"));
  ASSERT_TRUE(index.ok());
  ChunkData chunk;
  EXPECT_TRUE(index->ReadChunk(index->num_chunks(), &chunk).IsOutOfRange());
}

TEST(ChunkIndexTest, EmptyChunkingRejected) {
  MemEnv env;
  const Collection c = TestCollection();
  ChunkingResult chunking;
  EXPECT_TRUE(ChunkIndex::Build(c, chunking, &env,
                                ChunkIndexPaths::ForBase("idx"))
                  .status()
                  .IsInvalidArgument());
}

TEST(ChunkIndexTest, EmptyChunkInChunkingRejected) {
  MemEnv env;
  const Collection c = TestCollection();
  ChunkingResult chunking;
  chunking.chunks = {{0, 1}, {}};
  for (size_t i = 2; i < c.size(); ++i) chunking.outliers.push_back(i);
  EXPECT_TRUE(ChunkIndex::Build(c, chunking, &env,
                                ChunkIndexPaths::ForBase("idx"))
                  .status()
                  .IsInvalidArgument());
}

TEST(ChunkIndexTest, PopulationsAndDescribe) {
  MemEnv env;
  const Collection c = TestCollection();
  ChunkingResult chunking;
  chunking.chunks = {{0, 1, 2, 3}, {4, 5}, {6, 7}};
  for (size_t i = 8; i < c.size(); ++i) chunking.outliers.push_back(i);
  auto index = ChunkIndex::Build(c, chunking, &env,
                                 ChunkIndexPaths::ForBase("idx"));
  ASSERT_TRUE(index.ok());

  const PopulationStats pops = index->populations();
  EXPECT_EQ(pops.num_chunks, 3u);
  EXPECT_EQ(pops.total, 8u);
  EXPECT_EQ(pops.min, 2u);
  EXPECT_EQ(pops.max, 4u);
  EXPECT_NEAR(pops.mean, 8.0 / 3.0, 1e-9);
  EXPECT_NEAR(pops.imbalance, 4.0 / (8.0 / 3.0), 1e-9);

  const std::string describe = index->Describe();
  EXPECT_NE(describe.find("3 chunks"), std::string::npos);
  EXPECT_NE(describe.find("imbalance"), std::string::npos);
}

TEST(ChunkIndexTest, ValidateRejectsPopulationAboveBound) {
  MemEnv env;
  const Collection c = TestCollection();
  ChunkingResult chunking;
  chunking.chunks = {{0, 1, 2, 3}, {4, 5}};
  for (size_t i = 6; i < c.size(); ++i) chunking.outliers.push_back(i);
  auto index = ChunkIndex::Build(c, chunking, &env,
                                 ChunkIndexPaths::ForBase("idx"));
  ASSERT_TRUE(index.ok());

  EXPECT_TRUE(index->Validate().ok());
  EXPECT_TRUE(index->Validate(/*max_population=*/4).ok());
  const Status too_tight = index->Validate(/*max_population=*/3);
  EXPECT_TRUE(too_tight.IsCorruption()) << too_tight.ToString();
  EXPECT_NE(too_tight.ToString().find("population bound"), std::string::npos);
}

TEST(ChunkIndexTest, MaxChunkDescriptors) {
  MemEnv env;
  const Collection c = TestCollection();
  ChunkingResult chunking;
  chunking.chunks = {{0}, {1, 2, 3}, {4, 5}};
  for (size_t i = 6; i < c.size(); ++i) chunking.outliers.push_back(i);
  auto index = ChunkIndex::Build(c, chunking, &env,
                                 ChunkIndexPaths::ForBase("idx"));
  ASSERT_TRUE(index.ok());
  EXPECT_EQ(index->max_chunk_descriptors(), 3u);
}

TEST(ChunkIndexPathsTest, ForBaseAppendsSuffixes) {
  const ChunkIndexPaths paths = ChunkIndexPaths::ForBase("/tmp/foo");
  EXPECT_EQ(paths.chunk_file, "/tmp/foo.chunks");
  EXPECT_EQ(paths.index_file, "/tmp/foo.index");
}

}  // namespace
}  // namespace qvt
