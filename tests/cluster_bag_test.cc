#include "cluster/bag.h"

#include <gtest/gtest.h>

#include "cluster/chunker.h"
#include "descriptor/generator.h"
#include "geometry/sphere.h"
#include "geometry/vec.h"
#include "util/random.h"

namespace qvt {
namespace {

/// Well-separated blobs: BAG must recover them without mixing.
Collection Blobs(size_t num_blobs, size_t per_blob, uint64_t seed = 9) {
  Collection c;
  Rng rng(seed);
  DescriptorId id = 0;
  for (size_t blob = 0; blob < num_blobs; ++blob) {
    for (size_t i = 0; i < per_blob; ++i) {
      std::vector<float> v(kDescriptorDim);
      for (auto& x : v) {
        x = static_cast<float>(blob * 200.0 + rng.Gaussian(0, 1.0));
      }
      c.Append(id++, v, static_cast<ImageId>(blob));
    }
  }
  return c;
}

Collection SmallSynthetic(uint64_t seed = 4) {
  GeneratorConfig config;
  config.num_images = 40;
  config.descriptors_per_image = 25;
  config.num_modes = 8;
  config.seed = seed;
  return GenerateCollection(config);
}

TEST(BagTest, RecoversSeparatedBlobs) {
  const Collection c = Blobs(5, 40);
  BagConfig config;
  BagClusterer bag(&c, config);
  ASSERT_TRUE(bag.RunUntil(5).ok());
  EXPECT_LE(bag.NumClusters(), 5u);

  const ChunkingResult result = bag.Snapshot();
  ASSERT_TRUE(ValidateChunking(result, c.size()).ok());
  // Every chunk must be pure (one blob) because blobs are far apart
  // relative to their spread -- BAG merges within blobs long before radii
  // inflate enough to bridge blobs.
  for (const auto& chunk : result.chunks) {
    const ImageId blob = c.Image(chunk[0]);
    for (size_t pos : chunk) EXPECT_EQ(c.Image(pos), blob);
  }
}

TEST(BagTest, SnapshotIsValidPartition) {
  const Collection c = SmallSynthetic();
  BagConfig config;
  BagClusterer bag(&c, config);
  ASSERT_TRUE(bag.RunUntil(20).ok());
  const ChunkingResult result = bag.Snapshot();
  ASSERT_TRUE(ValidateChunking(result, c.size()).ok());
  EXPECT_FALSE(result.chunks.empty());
}

TEST(BagTest, SuccessionMonotonicallyCoarsens) {
  const Collection c = SmallSynthetic();
  BagConfig config;
  BagClusterer bag(&c, config);
  ASSERT_TRUE(bag.RunUntil(30).ok());
  const size_t at_30 = bag.NumClusters();
  const double avg_30 = bag.Snapshot().Populations().mean;
  ASSERT_TRUE(bag.RunUntil(15).ok());
  const size_t at_15 = bag.NumClusters();
  const double avg_15 = bag.Snapshot().Populations().mean;
  EXPECT_LE(at_15, at_30);
  EXPECT_LE(at_15, 15u);
  EXPECT_GE(avg_15, avg_30);
}

TEST(BagTest, SnapshotDoesNotDisturbState) {
  const Collection c = SmallSynthetic();
  BagConfig config;
  BagClusterer bag(&c, config);
  ASSERT_TRUE(bag.RunUntil(25).ok());
  const ChunkingResult a = bag.Snapshot();
  const ChunkingResult b = bag.Snapshot();
  EXPECT_EQ(a.chunks, b.chunks);
  EXPECT_EQ(a.outliers, b.outliers);
}

TEST(BagTest, GridMatchesBruteForce) {
  // The grid acceleration must be semantically invisible: identical chunks,
  // identical outliers, for several data shapes.
  for (uint64_t seed : {1ULL, 2ULL, 3ULL}) {
    const Collection c = SmallSynthetic(seed);
    BagConfig grid_config;
    grid_config.use_grid_acceleration = true;
    BagConfig brute_config;
    brute_config.use_grid_acceleration = false;

    BagClusterer grid(&c, grid_config);
    BagClusterer brute(&c, brute_config);
    ASSERT_TRUE(grid.RunUntil(20).ok());
    ASSERT_TRUE(brute.RunUntil(20).ok());

    const ChunkingResult from_grid = grid.Snapshot();
    const ChunkingResult from_brute = brute.Snapshot();
    EXPECT_EQ(from_grid.chunks, from_brute.chunks) << "seed " << seed;
    EXPECT_EQ(from_grid.outliers, from_brute.outliers) << "seed " << seed;
  }
}

TEST(BagTest, RareBundlesBecomeOutliers) {
  GeneratorConfig gen;
  gen.num_images = 80;
  gen.descriptors_per_image = 25;
  gen.num_modes = 8;
  gen.outlier_fraction = 0.15;
  gen.seed = 11;
  const Collection c = GenerateCollection(gen);

  BagConfig config;
  BagClusterer bag(&c, config);
  ASSERT_TRUE(bag.RunUntil(15).ok());
  const ChunkingResult result = bag.Snapshot();
  // Some of the rare bundles must end up discarded.
  EXPECT_GT(result.outliers.size(), 0u);
  EXPECT_LT(result.outliers.size(), c.size() / 3);
}

TEST(BagTest, ChunksAreSpatiallyTight) {
  const Collection c = Blobs(4, 50);
  BagConfig config;
  BagClusterer bag(&c, config);
  ASSERT_TRUE(bag.RunUntil(4).ok());
  const ChunkingResult result = bag.Snapshot();
  for (const auto& chunk : result.chunks) {
    std::vector<std::span<const float>> pts;
    for (size_t pos : chunk) pts.push_back(c.Vector(pos));
    const Sphere sphere = CentroidBoundingSphere(pts, c.dim());
    // Blob stddev is 1 per dim -> radius around sqrt(24)*~1.5.
    EXPECT_LT(sphere.radius, 20.0);
  }
}

TEST(BagTest, StatsArepopulated) {
  const Collection c = Blobs(3, 30);
  BagConfig config;
  BagClusterer bag(&c, config);
  ASSERT_TRUE(bag.RunUntil(3).ok());
  EXPECT_GT(bag.stats().passes, 0u);
  EXPECT_GT(bag.stats().merges, 0u);
  EXPECT_GT(bag.stats().partner_checks, bag.stats().merges);
}

TEST(BagTest, PassCapReturnsError) {
  const Collection c = Blobs(4, 20);
  BagConfig config;
  config.max_passes = 1;
  BagClusterer bag(&c, config);
  // One pass cannot get to a single cluster.
  EXPECT_TRUE(bag.RunUntil(1).IsFailedPrecondition());
}

TEST(BagTest, TargetAlreadyMetIsNoOp) {
  const Collection c = Blobs(2, 10);
  BagConfig config;
  BagClusterer bag(&c, config);
  ASSERT_TRUE(bag.RunUntil(c.size()).ok());  // already satisfied
  EXPECT_EQ(bag.stats().passes, 0u);
}

TEST(BagChunkerTest, AdapterRunsEndToEnd) {
  const Collection c = SmallSynthetic();
  BagChunker chunker(20, BagConfig{});
  auto result = chunker.FormChunks(c);
  ASSERT_TRUE(result.ok());
  ASSERT_TRUE(ValidateChunking(*result, c.size()).ok());
  EXPECT_EQ(chunker.name(), "BAG");
}

TEST(BagChunkerTest, RejectsEmptyCollection) {
  Collection empty;
  BagChunker chunker(5, BagConfig{});
  EXPECT_TRUE(chunker.FormChunks(empty).status().IsInvalidArgument());
}

}  // namespace
}  // namespace qvt
