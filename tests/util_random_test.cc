#include "util/random.h"

#include <algorithm>
#include <cmath>
#include <set>

#include <gtest/gtest.h>

namespace qvt {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) same += (a.Next() == b.Next());
  EXPECT_LT(same, 3);
}

TEST(RngTest, UniformStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.Uniform(17), 17u);
  }
}

TEST(RngTest, UniformOneAlwaysZero) {
  Rng rng(7);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.Uniform(1), 0u);
}

TEST(RngTest, UniformIntCoversInclusiveRange) {
  Rng rng(9);
  std::set<int64_t> seen;
  for (int i = 0; i < 2000; ++i) {
    const int64_t v = rng.UniformInt(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(11);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.NextDouble();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(RngTest, GaussianMomentsRoughlyCorrect) {
  Rng rng(13);
  const int n = 20000;
  double sum = 0, sum_sq = 0;
  for (int i = 0; i < n; ++i) {
    const double g = rng.Gaussian(5.0, 2.0);
    sum += g;
    sum_sq += g * g;
  }
  const double mean = sum / n;
  const double var = sum_sq / n - mean * mean;
  EXPECT_NEAR(mean, 5.0, 0.1);
  EXPECT_NEAR(var, 4.0, 0.3);
}

TEST(RngTest, HeavyTailHasOutliers) {
  Rng rng(17);
  const int n = 20000;
  int beyond_5_sigma = 0;
  for (int i = 0; i < n; ++i) {
    if (std::abs(rng.HeavyTail(1.0, 2)) > 5.0) ++beyond_5_sigma;
  }
  // A Gaussian would give ~0.00006% beyond 5 sigma; a t(2) tail gives ~1-3%.
  EXPECT_GT(beyond_5_sigma, 50);
}

TEST(RngTest, BernoulliEdgeCases) {
  Rng rng(19);
  EXPECT_FALSE(rng.Bernoulli(0.0));
  EXPECT_TRUE(rng.Bernoulli(1.0));
  int heads = 0;
  for (int i = 0; i < 10000; ++i) heads += rng.Bernoulli(0.25);
  EXPECT_NEAR(heads / 10000.0, 0.25, 0.03);
}

TEST(RngTest, CategoricalRespectsWeights) {
  Rng rng(23);
  std::vector<double> weights = {1.0, 0.0, 3.0};
  int counts[3] = {0, 0, 0};
  for (int i = 0; i < 8000; ++i) ++counts[rng.Categorical(weights)];
  EXPECT_EQ(counts[1], 0);
  EXPECT_NEAR(static_cast<double>(counts[2]) / counts[0], 3.0, 0.5);
}

TEST(RngTest, PermutationIsAPermutation) {
  Rng rng(29);
  const auto perm = rng.Permutation(100);
  std::set<uint32_t> seen(perm.begin(), perm.end());
  EXPECT_EQ(perm.size(), 100u);
  EXPECT_EQ(seen.size(), 100u);
  EXPECT_EQ(*seen.begin(), 0u);
  EXPECT_EQ(*seen.rbegin(), 99u);
}

TEST(RngTest, PermutationOfZeroAndOne) {
  Rng rng(31);
  EXPECT_TRUE(rng.Permutation(0).empty());
  const auto one = rng.Permutation(1);
  ASSERT_EQ(one.size(), 1u);
  EXPECT_EQ(one[0], 0u);
}

TEST(RngTest, SampleWithoutReplacementDistinct) {
  Rng rng(37);
  const auto sample = rng.SampleWithoutReplacement(50, 20);
  std::set<uint32_t> seen(sample.begin(), sample.end());
  EXPECT_EQ(sample.size(), 20u);
  EXPECT_EQ(seen.size(), 20u);
  for (uint32_t v : sample) EXPECT_LT(v, 50u);
}

TEST(RngTest, SampleAllElements) {
  Rng rng(41);
  const auto sample = rng.SampleWithoutReplacement(10, 10);
  std::set<uint32_t> seen(sample.begin(), sample.end());
  EXPECT_EQ(seen.size(), 10u);
}

/// Property sweep: uniformity of Uniform(n) across seeds, chi-square-ish.
class RngUniformitySweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RngUniformitySweep, UniformIsRoughlyFlat) {
  Rng rng(GetParam());
  constexpr int kBuckets = 8;
  constexpr int kDraws = 16000;
  int counts[kBuckets] = {};
  for (int i = 0; i < kDraws; ++i) ++counts[rng.Uniform(kBuckets)];
  for (int b = 0; b < kBuckets; ++b) {
    EXPECT_NEAR(counts[b], kDraws / kBuckets, kDraws / kBuckets * 0.15)
        << "bucket " << b << " for seed " << GetParam();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RngUniformitySweep,
                         ::testing::Values(1, 42, 1337, 0xdeadbeef,
                                           0xffffffffffffffffULL));

}  // namespace
}  // namespace qvt
