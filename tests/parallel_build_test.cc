// End-to-end determinism tests for the parallel build pipeline: every build
// artifact must be byte-identical no matter what QVT_BUILD_THREADS /
// SetBuildThreads() says. See the determinism contract in
// util/parallel_for.h and the "Parallel build pipeline" section of DESIGN.md.

#include <unistd.h>

#include <algorithm>
#include <cstring>
#include <filesystem>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "bench_util/index_suite.h"
#include "cluster/bag.h"
#include "cluster/kmeans.h"
#include "cluster/round_robin.h"
#include "cluster/srtree_chunker.h"
#include "core/chunk_index.h"
#include "descriptor/generator.h"
#include "util/env.h"
#include "util/logging.h"
#include "util/parallel_for.h"

namespace qvt {
namespace {

/// Restores the environment/hardware default thread count on scope exit.
struct BuildThreadsGuard {
  ~BuildThreadsGuard() { SetBuildThreads(0); }
};

/// The thread counts every artifact is checked at: serial, even split, a
/// count that leaves a ragged final shard, and whatever this machine has.
std::vector<size_t> TestThreadCounts() {
  std::vector<size_t> counts{1, 2, 7};
  const size_t hw =
      std::max<size_t>(1, std::thread::hardware_concurrency());
  if (hw != 1 && hw != 2 && hw != 7) counts.push_back(hw);
  return counts;
}

GeneratorConfig TestGeneratorConfig() {
  GeneratorConfig config;
  config.num_images = 40;
  config.descriptors_per_image = 20;
  config.num_modes = 8;
  config.seed = 11;
  return config;
}

/// Builds a chunk index with `chunker` at the given thread count and returns
/// the concatenated bytes of both output files (chunk file + index file).
std::vector<uint8_t> IndexFileBytes(const Collection& collection,
                                    Chunker& chunker, size_t threads) {
  SetBuildThreads(threads);
  auto chunking = chunker.FormChunks(collection);
  QVT_CHECK_OK(chunking.status()) << chunker.name();
  MemEnv env;
  const ChunkIndexPaths paths = ChunkIndexPaths::ForBase("idx");
  auto index = ChunkIndex::Build(collection, *chunking, &env, paths);
  QVT_CHECK_OK(index.status()) << chunker.name();
  auto chunk_bytes = ReadFileBytes(&env, paths.chunk_file);
  auto index_bytes = ReadFileBytes(&env, paths.index_file);
  QVT_CHECK_OK(chunk_bytes.status());
  QVT_CHECK_OK(index_bytes.status());
  std::vector<uint8_t> all = std::move(chunk_bytes).value();
  all.insert(all.end(), index_bytes->begin(), index_bytes->end());
  return all;
}

/// Asserts the chunker produces byte-identical index files at every tested
/// thread count (the collection itself is generated serially once, so any
/// divergence is the chunker's).
void ExpectChunkerThreadCountInvariant(
    const std::function<std::unique_ptr<Chunker>()>& make_chunker) {
  BuildThreadsGuard guard;
  SetBuildThreads(1);
  const Collection collection = GenerateCollection(TestGeneratorConfig());
  auto chunker = make_chunker();
  const std::vector<uint8_t> serial =
      IndexFileBytes(collection, *chunker, 1);
  ASSERT_FALSE(serial.empty());
  for (size_t threads : TestThreadCounts()) {
    if (threads == 1) continue;
    auto parallel_chunker = make_chunker();
    const std::vector<uint8_t> parallel =
        IndexFileBytes(collection, *parallel_chunker, threads);
    ASSERT_EQ(parallel.size(), serial.size())
        << chunker->name() << " at " << threads << " threads";
    EXPECT_EQ(std::memcmp(parallel.data(), serial.data(), serial.size()), 0)
        << chunker->name() << " index files differ at " << threads
        << " threads";
  }
}

TEST(ParallelBuildTest, GeneratorIsThreadCountInvariant) {
  BuildThreadsGuard guard;
  SetBuildThreads(1);
  const Collection serial = GenerateCollection(TestGeneratorConfig());
  const auto serial_raw = serial.RawData();
  for (size_t threads : TestThreadCounts()) {
    if (threads == 1) continue;
    SetBuildThreads(threads);
    const Collection parallel = GenerateCollection(TestGeneratorConfig());
    const auto parallel_raw = parallel.RawData();
    ASSERT_EQ(parallel.size(), serial.size()) << threads << " threads";
    ASSERT_EQ(parallel_raw.size(), serial_raw.size());
    EXPECT_EQ(std::memcmp(parallel_raw.data(), serial_raw.data(),
                          serial_raw.size() * sizeof(float)),
              0)
        << "generated descriptors differ at " << threads << " threads";
  }
}

TEST(ParallelBuildTest, SrTreeChunkerBitIdentical) {
  ExpectChunkerThreadCountInvariant(
      [] { return std::make_unique<SrTreeChunker>(64); });
}

TEST(ParallelBuildTest, BagChunkerBitIdentical) {
  ExpectChunkerThreadCountInvariant(
      [] { return std::make_unique<BagChunker>(12, BagConfig{}); });
}

TEST(ParallelBuildTest, RoundRobinChunkerBitIdentical) {
  ExpectChunkerThreadCountInvariant(
      [] { return std::make_unique<RoundRobinChunker>(50); });
}

TEST(ParallelBuildTest, KMeansChunkerBitIdentical) {
  ExpectChunkerThreadCountInvariant([] {
    KMeansConfig config;
    config.num_clusters = 8;
    config.max_iterations = 8;
    return std::make_unique<KMeansChunker>(config);
  });
}

TEST(ParallelBuildTest, SameSeedBuildsAreByteIdentical) {
  // Two builds from the same master seed — in the same process, at a
  // parallel thread count — must produce byte-identical index files: all
  // build-path RNG flows through deterministic stream splitting, never
  // through shared mutable generator state.
  BuildThreadsGuard guard;
  const size_t threads = TestThreadCounts().back();
  SetBuildThreads(threads);
  const Collection first_collection = GenerateCollection(TestGeneratorConfig());
  const Collection second_collection =
      GenerateCollection(TestGeneratorConfig());
  KMeansConfig config;
  config.num_clusters = 8;
  KMeansChunker first_chunker(config);
  KMeansChunker second_chunker(config);
  const std::vector<uint8_t> first =
      IndexFileBytes(first_collection, first_chunker, threads);
  const std::vector<uint8_t> second =
      IndexFileBytes(second_collection, second_chunker, threads);
  ASSERT_EQ(first.size(), second.size());
  EXPECT_EQ(std::memcmp(first.data(), second.data(), first.size()), 0);
}

TEST(ParallelBuildTest, ConcurrentSuiteBuildsAreSafe) {
  // TSan hammer: several threads race BuildOrLoad on the same cache dir.
  // The file lock serializes the actual build; the rest load the cache.
  // Under -DQVT_SANITIZE=thread this is the data-race detector for the
  // whole suite-construction path.
  BuildThreadsGuard guard;
  SetBuildThreads(2);
  ExperimentConfig config = ExperimentConfig::Tiny();
  config.cache_dir = "/tmp/qvt_parallel_build_test_" + std::to_string(getpid());
  std::filesystem::remove_all(config.cache_dir);

  constexpr int kThreads = 3;
  std::vector<std::unique_ptr<IndexSuite>> suites(kThreads);
  std::vector<Status> statuses(kThreads);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      auto suite = IndexSuite::BuildOrLoad(config, Env::Posix());
      statuses[t] = suite.status();
      if (suite.ok()) suites[t] = std::move(suite).value();
    });
  }
  for (std::thread& thread : threads) thread.join();

  for (int t = 0; t < kThreads; ++t) {
    ASSERT_TRUE(statuses[t].ok()) << "builder " << t << ": "
                                  << statuses[t].message();
    ASSERT_NE(suites[t], nullptr);
  }
  // Every racer must observe the same suite.
  for (int t = 1; t < kThreads; ++t) {
    for (Strategy strategy : kAllStrategies) {
      for (SizeClass size_class : kAllSizeClasses) {
        const IndexVariant& a = suites[0]->variant(strategy, size_class);
        const IndexVariant& b = suites[t]->variant(strategy, size_class);
        EXPECT_EQ(a.index.num_chunks(), b.index.num_chunks());
        EXPECT_EQ(a.retained, b.retained);
      }
    }
  }
  suites.clear();
  std::filesystem::remove_all(config.cache_dir);
}

}  // namespace
}  // namespace qvt
