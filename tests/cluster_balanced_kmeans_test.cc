#include "cluster/balanced_kmeans.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "cluster/chunker.h"
#include "cluster/kmeans.h"
#include "cluster/rebalance.h"
#include "core/chunk_index.h"
#include "core/evaluation.h"
#include "core/exact_scan.h"
#include "core/search_method.h"
#include "core/searcher.h"
#include "descriptor/generator.h"
#include "descriptor/workload.h"
#include "util/parallel_for.h"

namespace qvt {
namespace {

/// A deliberately skewed collection: ~half of all descriptors in one dense
/// mode. Plain k-means hands the heavy mode oversized chunks; the balanced
/// builds must not.
Collection SkewedCollection(size_t num_images = 60) {
  GeneratorConfig config;
  config.num_images = num_images;
  config.descriptors_per_image = 40;
  config.num_modes = 12;
  config.heavy_mode_weight = 0.5;
  config.outlier_fraction = 0.0;
  config.seed = 321;
  return GenerateCollection(config);
}

BalancedKMeansConfig SkewConfig(size_t clusters = 8) {
  BalancedKMeansConfig config;
  config.base.num_clusters = clusters;
  config.base.max_iterations = 8;
  return config;
}

TEST(BalancedKMeansTest, PartitionIsValidAndBounded) {
  const Collection c = SkewedCollection();
  BalancedKMeansChunker chunker(SkewConfig());
  auto result = chunker.FormChunks(c);
  ASSERT_TRUE(result.ok());
  ASSERT_TRUE(ValidateChunking(*result, c.size()).ok());
  EXPECT_TRUE(result->outliers.empty());
  EXPECT_EQ(chunker.name(), "BKM");

  // The slack-derived bound holds for every chunk, so the imbalance factor
  // cannot exceed bound / mean (= slack when no chunk went empty).
  const size_t bound = chunker.last_bound();
  ASSERT_GT(bound, 0u);
  const PopulationStats pops = result->Populations();
  EXPECT_LE(pops.max, bound);
  EXPECT_LE(pops.imbalance, static_cast<double>(bound) / pops.mean + 1e-9);
}

TEST(BalancedKMeansTest, BeatsPlainKMeansImbalanceOnSkewedData) {
  const Collection c = SkewedCollection();
  KMeansConfig km_config;
  km_config.num_clusters = 8;
  km_config.max_iterations = 8;
  KMeansChunker km(km_config);
  auto km_result = km.FormChunks(c);
  ASSERT_TRUE(km_result.ok());

  BalancedKMeansChunker bkm(SkewConfig());
  auto bkm_result = bkm.FormChunks(c);
  ASSERT_TRUE(bkm_result.ok());

  // The whole point: on skewed data, plain k-means produces giant chunks
  // and the balanced variant does not.
  EXPECT_LT(bkm_result->Populations().imbalance,
            km_result->Populations().imbalance);
  EXPECT_LT(bkm_result->Populations().max, km_result->Populations().max);
}

TEST(BalancedKMeansTest, ExplicitMaxPopulationIsHonored) {
  const Collection c = SkewedCollection();
  BalancedKMeansConfig config = SkewConfig(10);
  config.max_population = 300;
  BalancedKMeansChunker chunker(config);
  auto result = chunker.FormChunks(c);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(chunker.last_bound(), 300u);
  EXPECT_LE(result->Populations().max, 300u);
}

TEST(BalancedKMeansTest, BoundTooTightIsInvalidArgument) {
  const Collection c = SkewedCollection();  // 2400 descriptors
  BalancedKMeansConfig config = SkewConfig(4);
  config.max_population = 100;  // 4 * 100 < 2400
  BalancedKMeansChunker chunker(config);
  EXPECT_TRUE(chunker.FormChunks(c).status().IsInvalidArgument());
}

TEST(BalancedKMeansTest, RejectsEmptyCollection) {
  Collection empty;
  BalancedKMeansChunker chunker(SkewConfig());
  EXPECT_TRUE(chunker.FormChunks(empty).status().IsInvalidArgument());
}

TEST(BalancedKMeansTest, DeterministicForSeed) {
  const Collection c = SkewedCollection();
  BalancedKMeansChunker a(SkewConfig()), b(SkewConfig());
  auto ra = a.FormChunks(c);
  auto rb = b.FormChunks(c);
  ASSERT_TRUE(ra.ok());
  ASSERT_TRUE(rb.ok());
  EXPECT_EQ(ra->chunks, rb->chunks);
}

TEST(BalancedKMeansTest, BitIdenticalAcrossBuildThreadCounts) {
  const Collection c = SkewedCollection();
  ChunkingResult reference;
  for (const size_t threads : {1u, 2u, 4u, 8u}) {
    SetBuildThreads(threads);
    BalancedKMeansChunker chunker(SkewConfig());
    auto result = chunker.FormChunks(c);
    ASSERT_TRUE(result.ok());
    if (threads == 1) {
      reference = std::move(result).value();
    } else {
      EXPECT_EQ(result->chunks, reference.chunks)
          << "chunking differs at " << threads << " build threads";
      EXPECT_EQ(result->outliers, reference.outliers);
    }
  }
  SetBuildThreads(0);
}

TEST(BalancedKMeansTest, ExactSearchOverBalancedIndexMatchesExactScan) {
  const Collection c = SkewedCollection(30);
  BalancedKMeansChunker chunker(SkewConfig(6));
  auto chunking = chunker.FormChunks(c);
  ASSERT_TRUE(chunking.ok());

  const ChunkIndexPaths paths =
      ChunkIndexPaths::ForBase(::testing::TempDir() + "/bkm_recall");
  auto index = ChunkIndex::Build(c, *chunking, Env::Posix(), paths);
  ASSERT_TRUE(index.ok());
  const auto bound = static_cast<uint32_t>(chunker.last_bound());
  ASSERT_TRUE(index->Validate(bound).ok());

  const size_t k = 5;
  Rng rng(9);
  const Workload workload = MakeDatasetQueries(c, 40, &rng);
  const GroundTruth truth = GroundTruth::Compute(c, workload, k);

  const Searcher searcher(&*index, DiskCostModel{});
  const auto method = WrapSearcher(&searcher);
  ASSERT_TRUE(method->Prepare().ok());
  for (size_t q = 0; q < workload.num_queries(); ++q) {
    auto result = method->Search(workload.Query(q), k, StopRule::Exact());
    ASSERT_TRUE(result.ok());
    EXPECT_EQ(PrecisionAtK(result->neighbors, truth.TruthFor(q), k), 1.0)
        << "query " << q << " lost a true neighbor to balanced chunking";
  }
}

TEST(RebalanceTest, SplitOversizedEnforcesBound) {
  const Collection c = SkewedCollection();
  // One giant chunk holding everything.
  ChunkingResult chunking;
  chunking.chunks.emplace_back();
  for (size_t i = 0; i < c.size(); ++i) chunking.chunks[0].push_back(i);

  auto split = SplitOversized(std::move(chunking), c, 200);
  ASSERT_TRUE(split.ok());
  ASSERT_TRUE(ValidateChunking(*split, c.size()).ok());
  EXPECT_LE(split->Populations().max, 200u);
  EXPECT_EQ(split->TotalChunkedDescriptors(), c.size());
}

TEST(RebalanceTest, SplitRequiresPositiveBound) {
  const Collection c = SkewedCollection(4);
  ChunkingResult chunking;
  chunking.chunks.push_back({0, 1, 2});
  EXPECT_TRUE(
      SplitOversized(std::move(chunking), c, 0).status().IsInvalidArgument());
}

TEST(RebalanceTest, PackUndersizedMergesSmallChunks) {
  const Collection c = SkewedCollection();
  // Degenerate chunking: every descriptor its own chunk.
  ChunkingResult chunking;
  for (size_t i = 0; i < 50; ++i) chunking.chunks.push_back({i});
  for (size_t i = 50; i < c.size(); ++i) chunking.outliers.push_back(i);

  auto packed = PackUndersized(std::move(chunking), c, /*min_population=*/10,
                               /*max_population=*/25);
  ASSERT_TRUE(packed.ok());
  ASSERT_TRUE(ValidateChunking(*packed, c.size()).ok());
  EXPECT_LT(packed->chunks.size(), 50u);
  EXPECT_LE(packed->Populations().max, 25u);
  // Outliers pass through untouched.
  EXPECT_EQ(packed->outliers.size(), c.size() - 50);
}

TEST(RebalanceTest, PackRejectsMinAboveMax) {
  const Collection c = SkewedCollection(4);
  ChunkingResult chunking;
  chunking.chunks.push_back({0, 1});
  EXPECT_TRUE(PackUndersized(std::move(chunking), c, /*min_population=*/10,
                             /*max_population=*/5)
                  .status()
                  .IsInvalidArgument());
}

TEST(RebalanceTest, RebalanceAnyChunkerOutput) {
  // The passes are chunker-agnostic: bolt a bound onto plain k-means.
  const Collection c = SkewedCollection();
  KMeansConfig km_config;
  km_config.num_clusters = 8;
  km_config.max_iterations = 8;
  KMeansChunker km(km_config);
  auto chunking = km.FormChunks(c);
  ASSERT_TRUE(chunking.ok());
  const size_t before_max = chunking->Populations().max;

  RebalanceOptions options;
  options.max_population = 300;
  options.min_population = 60;
  auto rebalanced = RebalanceChunking(std::move(chunking).value(), c, options);
  ASSERT_TRUE(rebalanced.ok());
  ASSERT_TRUE(ValidateChunking(*rebalanced, c.size()).ok());
  EXPECT_LE(rebalanced->Populations().max, 300u);
  EXPECT_LT(rebalanced->Populations().max, before_max);
  EXPECT_EQ(rebalanced->TotalChunkedDescriptors(), c.size());
}

TEST(RebalanceTest, DeterministicAcrossBuildThreadCounts) {
  const Collection c = SkewedCollection();
  ChunkingResult reference;
  for (const size_t threads : {1u, 4u}) {
    SetBuildThreads(threads);
    KMeansConfig km_config;
    km_config.num_clusters = 8;
    km_config.max_iterations = 8;
    KMeansChunker km(km_config);
    auto chunking = km.FormChunks(c);
    ASSERT_TRUE(chunking.ok());
    RebalanceOptions options;
    options.max_population = 300;
    options.min_population = 60;
    auto rebalanced =
        RebalanceChunking(std::move(chunking).value(), c, options);
    ASSERT_TRUE(rebalanced.ok());
    if (threads == 1) {
      reference = std::move(rebalanced).value();
    } else {
      EXPECT_EQ(rebalanced->chunks, reference.chunks);
    }
  }
  SetBuildThreads(0);
}

}  // namespace
}  // namespace qvt
