#include "storage/disk_cost_model.h"

#include <gtest/gtest.h>

#include "descriptor/types.h"

namespace qvt {
namespace {

TEST(DiskCostModelTest, IoChargesSeekPlusTransfer) {
  DiskCostModel model;
  const auto& cfg = model.config();
  EXPECT_EQ(model.ChunkIoMicros(0), cfg.seek_micros);
  EXPECT_EQ(model.ChunkIoMicros(10),
            cfg.seek_micros + 10 * cfg.transfer_micros_per_page);
}

TEST(DiskCostModelTest, CpuScalesWithDescriptors) {
  DiskCostModel model;
  EXPECT_EQ(model.ChunkCpuMicros(0), 0);
  EXPECT_EQ(model.ChunkCpuMicros(1000),
            static_cast<int64_t>(1000 * model.config().cpu_micros_per_distance));
}

TEST(DiskCostModelTest, OverlapTakesMax) {
  DiskCostModelConfig cfg;
  cfg.overlap_io_cpu = true;
  DiskCostModel overlap(cfg);
  cfg.overlap_io_cpu = false;
  DiskCostModel serial(cfg);

  const uint32_t pages = 10, descriptors = 100000;
  const int64_t io = overlap.ChunkIoMicros(pages);
  const int64_t cpu = overlap.ChunkCpuMicros(descriptors);
  EXPECT_EQ(overlap.ChunkTotalMicros(pages, descriptors), std::max(io, cpu));
  EXPECT_EQ(serial.ChunkTotalMicros(pages, descriptors), io + cpu);
}

TEST(DiskCostModelTest, CalibrationSmallSrChunkIsAboutTenMs) {
  // §5.5: "reading and processing each chunk takes only about 10
  // milliseconds" for SR chunks of 1-2.5k descriptors.
  DiskCostModel model;
  const uint32_t descriptors = 1719;  // paper's MEDIUM SR chunk
  const uint32_t pages = static_cast<uint32_t>(
      PagesForBytes(descriptors * DescriptorRecordBytes(kDescriptorDim)));
  const double ms =
      static_cast<double>(model.ChunkTotalMicros(pages, descriptors)) / 1000.0;
  EXPECT_GT(ms, 5.0);
  EXPECT_LT(ms, 20.0);
}

TEST(DiskCostModelTest, CalibrationGiantBagChunkIsAboutTwoSeconds) {
  // §5.5: "processing the largest chunk of the BAG algorithm took as much
  // as 1.8 seconds" (~1M descriptors).
  DiskCostModel model;
  const uint32_t descriptors = 1000000;
  const uint32_t pages = static_cast<uint32_t>(
      PagesForBytes(static_cast<uint64_t>(descriptors) *
                    DescriptorRecordBytes(kDescriptorDim)));
  const double seconds =
      static_cast<double>(model.ChunkTotalMicros(pages, descriptors)) * 1e-6;
  EXPECT_GT(seconds, 1.2);
  EXPECT_LT(seconds, 3.0);
}

TEST(DiskCostModelTest, CalibrationIndexScanTensOfMs) {
  // §5.5: "reading the chunk index takes about 50 milliseconds on average"
  // for 1,871-4,720 chunks.
  DiskCostModel model;
  const double ms_small =
      static_cast<double>(model.IndexScanMicros(4720)) / 1000.0;
  const double ms_large =
      static_cast<double>(model.IndexScanMicros(1871)) / 1000.0;
  EXPECT_GT(ms_small, 20.0);
  EXPECT_LT(ms_small, 100.0);
  EXPECT_GT(ms_large, 10.0);
  EXPECT_LT(ms_large, ms_small);
}

TEST(DiskCostModelTest, PagesForBytesRoundsUp) {
  EXPECT_EQ(PagesForBytes(0), 0u);
  EXPECT_EQ(PagesForBytes(1), 1u);
  EXPECT_EQ(PagesForBytes(kPageSize), 1u);
  EXPECT_EQ(PagesForBytes(kPageSize + 1), 2u);
}

// ---------------------------------------------------------------------------
// OverlappedScanTimeline (the prefetch pipeline's modeled wall clock)
// ---------------------------------------------------------------------------

TEST(OverlappedScanTimelineTest, DepthZeroIsTheSerialSum) {
  OverlappedScanTimeline timeline(0, /*start_micros=*/100);
  timeline.AddChunk(10, 5);
  timeline.AddChunk(20, 7);
  timeline.AddChunk(0, 3);  // cache hit
  EXPECT_EQ(timeline.ElapsedMicros(), 100 + (10 + 5) + (20 + 7) + (0 + 3));
}

TEST(OverlappedScanTimelineTest, DepthOnePipelinesBalancedChunks) {
  // io == cpu == 10: a one-deep window is already a perfect pipeline —
  // after the first read, every scan hides exactly one read.
  OverlappedScanTimeline timeline(1);
  for (int i = 0; i < 3; ++i) timeline.AddChunk(10, 10);
  EXPECT_EQ(timeline.ElapsedMicros(), 10 + 3 * 10);
  OverlappedScanTimeline serial(0);
  for (int i = 0; i < 3; ++i) serial.AddChunk(10, 10);
  EXPECT_EQ(serial.ElapsedMicros(), 3 * 20);
}

TEST(OverlappedScanTimelineTest, IoBoundPipelineIsDiskLimited) {
  // io 10, cpu 2: the disk is the bottleneck, so elapsed approaches
  // sum(io) + the last scan.
  OverlappedScanTimeline timeline(1);
  for (int i = 0; i < 3; ++i) timeline.AddChunk(10, 2);
  EXPECT_EQ(timeline.ElapsedMicros(), 3 * 10 + 2);
}

TEST(OverlappedScanTimelineTest, CpuBoundPipelineIsScanLimited) {
  // io 2, cpu 10 at depth 2: after the first arrival the scan never waits.
  OverlappedScanTimeline timeline(2);
  for (int i = 0; i < 3; ++i) timeline.AddChunk(2, 10);
  EXPECT_EQ(timeline.ElapsedMicros(), 2 + 3 * 10);
}

TEST(OverlappedScanTimelineTest, CacheHitsOccupyNoDiskTime) {
  OverlappedScanTimeline timeline(2);
  timeline.AddChunk(0, 5);   // hit: scan starts immediately
  timeline.AddChunk(10, 5);  // its read overlapped the first scan
  timeline.AddChunk(0, 5);   // hit: ready the moment the scan frees up
  EXPECT_EQ(timeline.ElapsedMicros(), 20);
}

TEST(OverlappedScanTimelineTest, DeeperWindowsNeverSlowTheScanDown) {
  const int64_t io[] = {9, 3, 14, 6, 2, 11, 5, 8};
  const int64_t cpu[] = {4, 12, 2, 9, 7, 3, 10, 6};
  int64_t previous = 0;
  for (size_t depth = 0; depth <= 5; ++depth) {
    OverlappedScanTimeline timeline(depth, 50);
    for (size_t i = 0; i < 8; ++i) timeline.AddChunk(io[i], cpu[i]);
    if (depth > 0) {
      EXPECT_LE(timeline.ElapsedMicros(), previous) << "depth " << depth;
    }
    previous = timeline.ElapsedMicros();
  }
  // And no depth can beat the disk or the CPU running flat out.
  int64_t io_sum = 0, cpu_sum = 0;
  for (size_t i = 0; i < 8; ++i) {
    io_sum += io[i];
    cpu_sum += cpu[i];
  }
  OverlappedScanTimeline deep(64, 50);
  for (size_t i = 0; i < 8; ++i) deep.AddChunk(io[i], cpu[i]);
  EXPECT_GE(deep.ElapsedMicros(), 50 + std::max(io_sum, cpu_sum));
}

}  // namespace
}  // namespace qvt
