#include "storage/prefetcher.h"

#include <array>
#include <atomic>
#include <condition_variable>
#include <cstdlib>
#include <mutex>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "storage/chunk_cache.h"
#include "util/status.h"

namespace qvt {
namespace {

// Synthetic chunk contents: a function of the id, so consumers can verify
// they received the read for the chunk they asked for.
void FillChunk(uint32_t chunk_id, ChunkData* out) {
  out->dim = 4;
  out->ids.assign({chunk_id * 10, chunk_id * 10 + 1});
  out->values.assign(8, static_cast<float>(chunk_id));
}

bool ChunkMatches(uint32_t chunk_id, const ChunkData& chunk) {
  return chunk.size() == 2 && chunk.ids[0] == chunk_id * 10 &&
         chunk.values.size() == 8 &&
         chunk.values[0] == static_cast<float>(chunk_id);
}

// A read function whose latency and outcome the test controls: it counts
// invocations per chunk, optionally blocks on a gate, and fails for chunks
// in `fail_ids` *after* scribbling a partial buffer (the crash-safety case:
// a torn read must never become visible to anyone).
struct FakeDisk {
  std::mutex mu;
  std::condition_variable cv;
  bool gate_open = true;
  std::atomic<uint64_t> total_reads{0};
  std::array<std::atomic<uint32_t>, 64> per_chunk_reads{};
  std::vector<uint32_t> fail_ids;

  ChunkReadFn ReadFn() {
    return [this](uint32_t chunk_id, ChunkData* out) {
      {
        std::unique_lock<std::mutex> lock(mu);
        cv.wait(lock, [this] { return gate_open; });
      }
      total_reads.fetch_add(1, std::memory_order_relaxed);
      per_chunk_reads[chunk_id].fetch_add(1, std::memory_order_relaxed);
      for (uint32_t fail : fail_ids) {
        if (chunk_id == fail) {
          out->dim = 4;
          out->ids.assign({999999u});  // torn read: half-filled buffer
          return Status::IoError("injected read failure");
        }
      }
      FillChunk(chunk_id, out);
      return Status::OK();
    };
  }

  static ChunkPagesFn PagesFn() {
    return [](uint32_t) { return 1u; };
  }

  void CloseGate() {
    std::lock_guard<std::mutex> lock(mu);
    gate_open = false;
  }

  void OpenGate() {
    {
      std::lock_guard<std::mutex> lock(mu);
      gate_open = true;
    }
    cv.notify_all();
  }
};

PrefetcherOptions Options(size_t depth, size_t io_threads = 2) {
  PrefetcherOptions options;
  options.depth = depth;
  options.io_threads = io_threads;
  return options;
}

TEST(PrefetcherTest, DepthFromEnvParsesAndClamps) {
  unsetenv("QVT_PREFETCH_DEPTH");
  EXPECT_EQ(PrefetcherOptions::DepthFromEnvOr(4), 4u);
  setenv("QVT_PREFETCH_DEPTH", "0", 1);
  EXPECT_EQ(PrefetcherOptions::DepthFromEnvOr(4), 0u);
  setenv("QVT_PREFETCH_DEPTH", "7", 1);
  EXPECT_EQ(PrefetcherOptions::DepthFromEnvOr(4), 7u);
  setenv("QVT_PREFETCH_DEPTH", "9999", 1);
  EXPECT_EQ(PrefetcherOptions::DepthFromEnvOr(4), 64u);  // clamped
  setenv("QVT_PREFETCH_DEPTH", "not-a-number", 1);
  EXPECT_EQ(PrefetcherOptions::DepthFromEnvOr(4), 4u);
  setenv("QVT_PREFETCH_DEPTH", "-3", 1);
  EXPECT_EQ(PrefetcherOptions::DepthFromEnvOr(4), 4u);
  unsetenv("QVT_PREFETCH_DEPTH");
}

TEST(PrefetcherTest, DeliversChunksInRankOrderWithoutCache) {
  FakeDisk disk;
  ChunkPrefetcher prefetcher(disk.ReadFn(), FakeDisk::PagesFn(), nullptr,
                             Options(3));
  const std::vector<uint32_t> order{5, 1, 9, 3, 7};
  auto stream = prefetcher.NewStream({order.data(), order.size()});

  for (uint32_t chunk_id : order) {
    std::shared_ptr<const ChunkData> ref;
    const ChunkData* data = nullptr;
    bool from_cache = true;
    ASSERT_TRUE(stream->Next(&ref, &data, &from_cache).ok());
    ASSERT_NE(data, nullptr);
    EXPECT_FALSE(from_cache);  // no cache: never a hit
    EXPECT_TRUE(ChunkMatches(chunk_id, *data)) << "chunk " << chunk_id;
  }
  const PrefetchStats stats = stream->Finish();
  EXPECT_EQ(stats.issued, order.size());
  EXPECT_EQ(stats.used, order.size());
  EXPECT_EQ(stats.wasted, 0u);
  EXPECT_EQ(stats.cancelled, 0u);
  EXPECT_EQ(disk.total_reads.load(), order.size());
}

TEST(PrefetcherTest, PublishesConsumedChunksToCacheExactlyLikeSyncPath) {
  FakeDisk disk;
  ChunkCache cache(100);
  ChunkPrefetcher prefetcher(disk.ReadFn(), FakeDisk::PagesFn(), &cache,
                             Options(2));
  const std::vector<uint32_t> order{4, 8, 2};

  {
    auto stream = prefetcher.NewStream({order.data(), order.size()});
    for (uint32_t chunk_id : order) {
      std::shared_ptr<const ChunkData> ref;
      const ChunkData* data = nullptr;
      bool from_cache = true;
      ASSERT_TRUE(stream->Next(&ref, &data, &from_cache).ok());
      EXPECT_FALSE(from_cache);  // cold cache: every consume is a miss
      EXPECT_TRUE(ChunkMatches(chunk_id, *data));
    }
  }
  // The consume-time misses published through Put: all three are resident,
  // and the stats stream reads exactly like a synchronous cold pass.
  ChunkCacheStats stats = cache.Stats();
  EXPECT_EQ(stats.misses, order.size());
  EXPECT_EQ(stats.hits, 0u);
  for (uint32_t chunk_id : order) {
    EXPECT_TRUE(cache.Contains(chunk_id)) << "chunk " << chunk_id;
  }

  // Warm pass: the issue-time peek sees residents, so no reads are issued
  // and every Next() is an authoritative cache hit.
  auto warm = prefetcher.NewStream({order.data(), order.size()});
  for (uint32_t chunk_id : order) {
    std::shared_ptr<const ChunkData> ref;
    const ChunkData* data = nullptr;
    bool from_cache = false;
    ASSERT_TRUE(warm->Next(&ref, &data, &from_cache).ok());
    EXPECT_TRUE(from_cache);
    EXPECT_TRUE(ChunkMatches(chunk_id, *data));
  }
  const PrefetchStats warm_stats = warm->Finish();
  EXPECT_EQ(warm_stats.issued, 0u);
  EXPECT_EQ(disk.total_reads.load(), order.size());  // no second reads
  stats = cache.Stats();
  EXPECT_EQ(stats.hits, order.size());
  EXPECT_EQ(stats.misses, order.size());
}

// The thundering-herd fix at the prefetcher layer: two streams racing over
// the same missing chunk share one background pread.
TEST(PrefetcherTest, ConcurrentStreamsSingleFlightTheSameChunk) {
  FakeDisk disk;
  disk.CloseGate();  // hold the read so both streams attach to one job
  ChunkCache cache(100);
  ChunkPrefetcher prefetcher(disk.ReadFn(), FakeDisk::PagesFn(), &cache,
                             Options(2));
  const std::vector<uint32_t> order{6};

  auto a = prefetcher.NewStream({order.data(), order.size()});
  auto b = prefetcher.NewStream({order.data(), order.size()});
  disk.OpenGate();

  for (PrefetchStream* stream : {a.get(), b.get()}) {
    std::shared_ptr<const ChunkData> ref;
    const ChunkData* data = nullptr;
    bool from_cache = false;
    ASSERT_TRUE(stream->Next(&ref, &data, &from_cache).ok());
    EXPECT_TRUE(ChunkMatches(6, *data));
  }
  EXPECT_EQ(disk.per_chunk_reads[6].load(), 1u);  // one pread, two consumers

  const PrefetchStats sa = a->Finish();
  const PrefetchStats sb = b->Finish();
  // Both asked for the (shared) read; between them it was consumed once and
  // the loser's attachment resolved as a cache hit over the winner's Put.
  EXPECT_EQ(sa.issued + sb.issued, 2u);
  EXPECT_EQ(sa.used + sb.used + sa.wasted + sb.wasted, 2u);
  EXPECT_EQ(sa.cancelled + sb.cancelled, 0u);
}

TEST(PrefetcherTest, FinishCancelsOutstandingReadsPromptly) {
  FakeDisk disk;
  disk.CloseGate();
  ChunkCache cache(100);
  ChunkPrefetcher prefetcher(disk.ReadFn(), FakeDisk::PagesFn(), &cache,
                             Options(6, /*io_threads=*/2));
  const std::vector<uint32_t> order{1, 2, 3, 4, 5, 6, 7, 8};

  auto stream = prefetcher.NewStream({order.data(), order.size()});
  // Simulates a stop rule firing before the first chunk is even consumed.
  const PrefetchStats stats = stream->Finish();
  EXPECT_EQ(stats.issued, 6u);  // depth-limited window
  EXPECT_EQ(stats.used, 0u);
  EXPECT_EQ(stats.wasted + stats.cancelled, stats.issued);
  // With the disk gate still closed nothing had completed: all cancelled.
  EXPECT_EQ(stats.cancelled, stats.issued);

  disk.OpenGate();
  stream.reset();
  // Reads the workers never started are skipped outright; the (at most
  // io_threads) in-flight ones complete into the void, with nobody
  // interested. Crucially, nothing cancelled is ever published to the
  // cache — a cancelled prefetch must leave no trace.
  for (uint32_t chunk_id : order) {
    EXPECT_FALSE(cache.Contains(chunk_id)) << "chunk " << chunk_id;
  }
  EXPECT_EQ(cache.Stats().misses, 0u);  // peeks and Puts never touch stats
}

TEST(PrefetcherTest, CancelledReadsAreSkippedByIdleWorkers) {
  FakeDisk disk;
  disk.CloseGate();
  ChunkPrefetcher prefetcher(disk.ReadFn(), FakeDisk::PagesFn(), nullptr,
                             Options(8, /*io_threads=*/1));
  const std::vector<uint32_t> order{10, 11, 12, 13, 14, 15, 16, 17};
  auto stream = prefetcher.NewStream({order.data(), order.size()});
  stream->Finish();
  disk.OpenGate();
  stream.reset();
  // Force the pool to drain by issuing (and consuming) a fresh read.
  const std::vector<uint32_t> tail{20};
  auto probe = prefetcher.NewStream({tail.data(), tail.size()});
  std::shared_ptr<const ChunkData> ref;
  const ChunkData* data = nullptr;
  bool from_cache = false;
  ASSERT_TRUE(probe->Next(&ref, &data, &from_cache).ok());
  probe->Finish();
  // The single worker was parked on chunk 10's read when Finish() dropped
  // interest; every queued-but-unstarted read after it must have been
  // skipped without touching the disk.
  EXPECT_LE(disk.total_reads.load(), 2u);  // chunk 10 (in flight) + probe
}

TEST(PrefetcherTest, FailedReadSurfacesAtItsRankAndNeverPublishes) {
  FakeDisk disk;
  disk.fail_ids = {3};
  ChunkCache cache(100);
  ChunkPrefetcher prefetcher(disk.ReadFn(), FakeDisk::PagesFn(), &cache,
                             Options(4));
  const std::vector<uint32_t> order{1, 2, 3, 4};
  auto stream = prefetcher.NewStream({order.data(), order.size()});

  std::shared_ptr<const ChunkData> ref;
  const ChunkData* data = nullptr;
  bool from_cache = false;
  ASSERT_TRUE(stream->Next(&ref, &data, &from_cache).ok());  // chunk 1
  EXPECT_TRUE(ChunkMatches(1, *data));
  ASSERT_TRUE(stream->Next(&ref, &data, &from_cache).ok());  // chunk 2
  EXPECT_TRUE(ChunkMatches(2, *data));
  // The error arrives exactly where the synchronous path would hit it.
  const Status failed = stream->Next(&ref, &data, &from_cache);
  EXPECT_FALSE(failed.ok());
  stream->Finish();

  // Crash safety: the torn buffer of the failed read is recycled, never
  // cached — later lookups miss and would retry from disk.
  EXPECT_FALSE(cache.Contains(3));
  EXPECT_TRUE(cache.Contains(1));
  EXPECT_TRUE(cache.Contains(2));
}

TEST(PrefetcherTest, EvictionBetweenPeekAndConsumeFallsBackToSyncRead) {
  FakeDisk disk;
  ChunkCache cache(100);
  ChunkPrefetcher prefetcher(disk.ReadFn(), FakeDisk::PagesFn(), &cache,
                             Options(2));
  cache.Put(30, [] {
    ChunkData chunk;
    FillChunk(30, &chunk);
    return chunk;
  }(), 1);

  const std::vector<uint32_t> order{30};
  auto stream = prefetcher.NewStream({order.data(), order.size()});
  // Peek saw chunk 30 resident, so no read was issued. Evict it before the
  // consume: Next() must behave like the synchronous path (miss + read).
  cache.Clear();
  std::shared_ptr<const ChunkData> ref;
  const ChunkData* data = nullptr;
  bool from_cache = true;
  ASSERT_TRUE(stream->Next(&ref, &data, &from_cache).ok());
  EXPECT_FALSE(from_cache);
  EXPECT_TRUE(ChunkMatches(30, *data));
  EXPECT_EQ(disk.per_chunk_reads[30].load(), 1u);
  const PrefetchStats stats = stream->Finish();
  EXPECT_EQ(stats.issued, 0u);  // the read was the sync fallback, not issued
  EXPECT_TRUE(cache.Contains(30));  // and it re-published, like FetchChunk
}

TEST(PrefetcherTest, ManyStreamsOverSharedChunksAreRaceFree) {
  // TSan hammer: concurrent streams over overlapping orders, with eviction
  // churn, shared single-flight jobs, and mid-stream Finish() cancellation.
  FakeDisk disk;
  ChunkCache cache(8);  // tiny: constant eviction while streams race
  ChunkPrefetcher prefetcher(disk.ReadFn(), FakeDisk::PagesFn(), &cache,
                             Options(3, /*io_threads=*/3));

  constexpr size_t kThreads = 6;
  std::atomic<uint64_t> bad_chunks{0};
  std::vector<std::thread> threads;
  for (size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      std::vector<uint32_t> order;
      for (uint32_t i = 0; i < 24; ++i) {
        order.push_back((static_cast<uint32_t>(t) * 7 + i) % 16);
      }
      for (int pass = 0; pass < 3; ++pass) {
        auto stream = prefetcher.NewStream({order.data(), order.size()});
        // Consume a pass-dependent prefix, stranding the rest (cancel path).
        const size_t consume = pass == 0 ? order.size() : 5 + 3 * pass;
        for (size_t i = 0; i < consume; ++i) {
          std::shared_ptr<const ChunkData> ref;
          const ChunkData* data = nullptr;
          bool from_cache = false;
          const Status status = stream->Next(&ref, &data, &from_cache);
          if (!status.ok() || !ChunkMatches(order[i], *data)) {
            bad_chunks.fetch_add(1, std::memory_order_relaxed);
          }
        }
        stream->Finish();
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(bad_chunks.load(), 0u);
  EXPECT_LE(cache.used_pages(), 8u);
}

}  // namespace
}  // namespace qvt
