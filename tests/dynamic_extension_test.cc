// Unit tests of the dynamization building blocks: the append-only
// MutableBuffer and its publish protocol, the immutable TombstoneSet, level
// capacities, and the pure merge planner for both policies.
#include "dynamic/extension.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <thread>
#include <vector>

#include "dynamic/mutable_buffer.h"

namespace qvt {
namespace {

std::vector<float> Vec(size_t dim, float fill) {
  return std::vector<float>(dim, fill);
}

TEST(MutableBufferTest, AppendPublishesRowsInOrder) {
  MutableBuffer buffer(/*dim=*/4, /*capacity=*/8, /*base_seq=*/10);
  EXPECT_EQ(buffer.committed(), 0u);
  EXPECT_EQ(buffer.capacity(), 8u);
  EXPECT_EQ(buffer.base_seq(), 10u);

  buffer.Append(7, 3, 10, Vec(4, 1.5f));
  buffer.Append(9, 4, 11, Vec(4, -2.0f));
  ASSERT_EQ(buffer.committed(), 2u);
  EXPECT_EQ(buffer.id(0), 7u);
  EXPECT_EQ(buffer.image(0), 3u);
  EXPECT_EQ(buffer.seq(0), 10u);
  EXPECT_EQ(buffer.Vector(1)[2], -2.0f);
  EXPECT_EQ(buffer.seq(1), 11u);
}

TEST(MutableBufferTest, ScanMatchesBruteForceAndFiltersTombstones) {
  const size_t dim = 6;
  MutableBuffer buffer(dim, 32, 1);
  for (size_t i = 0; i < 20; ++i) {
    std::vector<float> v(dim);
    for (size_t d = 0; d < dim; ++d) {
      v[d] = static_cast<float>((i * 13 + d * 7) % 17);
    }
    buffer.Append(static_cast<DescriptorId>(100 + i), 0,
                  /*seq=*/1 + i, v);
  }
  const std::vector<float> query(dim, 3.0f);

  // Tombstone id 105 (row seq 6) at seq 50 — dead; and id 110 (row seq 11)
  // at seq 5 — older than the row, so the row survives (the re-insert
  // rule).
  std::vector<uint64_t> row_tombstones(20, 0);
  row_tombstones[5] = 50;
  row_tombstones[10] = 5;

  KnnResultSet set(5);
  QueryTelemetry telemetry;
  const uint64_t filtered =
      buffer.Scan(query, 20, row_tombstones, &set, &telemetry);
  EXPECT_EQ(filtered, 1u);
  EXPECT_EQ(telemetry.tombstones_filtered, 1u);
  EXPECT_EQ(telemetry.candidates_examined, 20u);
  EXPECT_EQ(telemetry.descriptors_scanned, 19u);

  KnnResultSet reference(5);
  for (size_t i = 0; i < 20; ++i) {
    if (i == 5) continue;
    double sq = 0;
    for (size_t d = 0; d < dim; ++d) {
      const double diff = static_cast<double>(buffer.Vector(i)[d]) -
                          static_cast<double>(query[d]);
      sq += diff * diff;
    }
    reference.Insert(buffer.id(i), std::sqrt(sq));
  }
  const auto got = set.Sorted();
  const auto want = reference.Sorted();
  ASSERT_EQ(got.size(), want.size());
  for (size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].id, want[i].id) << "rank " << i;
    EXPECT_DOUBLE_EQ(got[i].distance, want[i].distance) << "rank " << i;
  }
}

TEST(MutableBufferTest, ConcurrentReadersSeeOnlyCommittedRows) {
  const size_t dim = 8;
  const size_t capacity = 2000;
  MutableBuffer buffer(dim, capacity, 1);
  std::atomic<bool> stop{false};
  // Readers hammer committed() + row accessors while the writer appends;
  // every row visible through an acquire load must be fully written. Run
  // under TSan to prove the release/acquire protocol.
  std::vector<std::thread> readers;
  for (int t = 0; t < 3; ++t) {
    readers.emplace_back([&] {
      while (!stop.load(std::memory_order_relaxed)) {
        const size_t rows = buffer.committed();
        for (size_t i = 0; i < rows; ++i) {
          // Row i was published: id encodes seq, vector encodes id.
          EXPECT_EQ(buffer.seq(i), buffer.id(i) + 1u);
          EXPECT_EQ(buffer.Vector(i)[dim - 1],
                    static_cast<float>(buffer.id(i)));
        }
      }
    });
  }
  for (size_t i = 0; i < capacity; ++i) {
    buffer.Append(static_cast<DescriptorId>(i), 0, i + 1,
                  Vec(dim, static_cast<float>(i)));
  }
  stop.store(true, std::memory_order_relaxed);
  for (auto& reader : readers) reader.join();
  EXPECT_EQ(buffer.committed(), capacity);
}

TEST(TombstoneSetTest, WithAndSeqFor) {
  auto empty = TombstoneSet::Empty();
  EXPECT_TRUE(empty->empty());
  EXPECT_EQ(empty->SeqFor(42), 0u);

  auto one = empty->With(42, 7);
  EXPECT_EQ(one->size(), 1u);
  EXPECT_EQ(one->SeqFor(42), 7u);
  EXPECT_EQ(one->SeqFor(41), 0u);
  // The source set is untouched (immutably shared by snapshots).
  EXPECT_TRUE(empty->empty());

  auto two = one->With(10, 3);
  EXPECT_EQ(two->size(), 2u);
  EXPECT_EQ(two->entries().front().first, 10u);  // sorted by id

  // Re-deleting the same id keeps the newer seq.
  auto newer = two->With(42, 99);
  EXPECT_EQ(newer->size(), 2u);
  EXPECT_EQ(newer->SeqFor(42), 99u);
  auto older = newer->With(42, 5);
  EXPECT_EQ(older->SeqFor(42), 99u);
}

TEST(LevelCapacityTest, GrowsGeometricallyAndSaturates) {
  ExtensionConfig config;
  config.buffer_capacity = 100;
  config.scale_factor = 4;
  EXPECT_EQ(LevelCapacity(config, 0), 400u);
  EXPECT_EQ(LevelCapacity(config, 1), 1600u);
  EXPECT_EQ(LevelCapacity(config, 2), 6400u);
  // Degenerate scale factors clamp to 2 rather than looping forever.
  config.scale_factor = 0;
  EXPECT_EQ(LevelCapacity(config, 0), 200u);
  // Deep levels saturate instead of overflowing.
  config.scale_factor = 1000;
  EXPECT_EQ(LevelCapacity(config, 63), UINT64_MAX);
}

TEST(PlanMergeCascadeTest, TieringMergesFullLevelAndCascades) {
  ExtensionConfig config;
  config.buffer_capacity = 10;
  config.scale_factor = 2;
  config.policy = MergePolicy::kTiering;

  // Below the fan-in: nothing to do.
  EXPECT_TRUE(PlanMergeCascade(config, {{0, 0, 10, 1}}).empty());

  // Two level-0 shards overflow (fan-in 2) and the resulting level-1 shard
  // joins an existing one, cascading into level 2.
  std::vector<ShardGeometry> shards = {
      {0, 1, 20, 1},   // existing level-1 occupant
      {1, 0, 10, 21},  // two level-0 shards
      {2, 0, 10, 31},
  };
  const auto ops = PlanMergeCascade(config, shards);
  ASSERT_EQ(ops.size(), 2u);
  EXPECT_EQ(ops[0].target_level, 1u);
  EXPECT_EQ(ops[0].source_shard_ids, (std::vector<uint32_t>{1, 2}));
  EXPECT_EQ(ops[1].target_level, 2u);
  // Sources of the cascade: the old occupant and the simulated merge
  // output, which the planner numbers max(id)+1 = 3.
  EXPECT_EQ(ops[1].source_shard_ids, (std::vector<uint32_t>{0, 3}));
}

TEST(PlanMergeCascadeTest, LevelingKeepsOneShardPerLevel) {
  ExtensionConfig config;
  config.buffer_capacity = 10;
  config.scale_factor = 2;
  config.policy = MergePolicy::kLeveling;

  // A single level-0 shard that fits level 0: nothing to do.
  EXPECT_TRUE(PlanMergeCascade(config, {{5, 0, 10, 1}}).empty());

  // Flush shard + level-0 occupant fit level 0's capacity (20): one merge,
  // target level 0.
  {
    const auto ops =
        PlanMergeCascade(config, {{0, 0, 10, 1}, {1, 0, 10, 11}});
    ASSERT_EQ(ops.size(), 1u);
    EXPECT_EQ(ops[0].target_level, 0u);
    EXPECT_EQ(ops[0].source_shard_ids, (std::vector<uint32_t>{0, 1}));
  }

  // Overflowing level 0 pulls in the level-1 occupant; sources come in
  // ascending seq_floor (oldest rows first). 25 + 10 = 35 rows fit level
  // 1's capacity of 40.
  {
    const auto ops = PlanMergeCascade(
        config, {{0, 1, 10, 1}, {1, 0, 15, 31}, {2, 0, 10, 46}});
    ASSERT_EQ(ops.size(), 1u);
    EXPECT_EQ(ops[0].target_level, 1u);
    EXPECT_EQ(ops[0].source_shard_ids, (std::vector<uint32_t>{0, 1, 2}));
  }

  // When the gathered rows overflow the next level too, the target keeps
  // descending until its capacity holds them — even past empty levels.
  {
    const auto ops = PlanMergeCascade(
        config, {{0, 1, 30, 1}, {1, 0, 15, 31}, {2, 0, 10, 46}});
    ASSERT_EQ(ops.size(), 1u);
    EXPECT_EQ(ops[0].target_level, 2u);  // 55 rows need capacity 80
    EXPECT_EQ(ops[0].source_shard_ids, (std::vector<uint32_t>{0, 1, 2}));
  }

  // Deeper occupants that already fit stay untouched.
  {
    const auto ops = PlanMergeCascade(
        config, {{0, 2, 70, 1}, {1, 0, 5, 71}, {2, 0, 5, 76}});
    ASSERT_EQ(ops.size(), 1u);
    EXPECT_EQ(ops[0].target_level, 0u);
    EXPECT_EQ(ops[0].source_shard_ids, (std::vector<uint32_t>{1, 2}));
  }
}

TEST(PlanMergeCascadeTest, DeterministicForSameGeometry) {
  ExtensionConfig config;
  config.buffer_capacity = 4;
  config.scale_factor = 3;
  std::vector<ShardGeometry> shards;
  for (uint32_t i = 0; i < 9; ++i) {
    shards.push_back({i, i % 3, 4ull << (i % 3), 1 + 10ull * i});
  }
  const auto a = PlanMergeCascade(config, shards);
  std::reverse(shards.begin(), shards.end());
  const auto b = PlanMergeCascade(config, shards);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].source_shard_ids, b[i].source_shard_ids);
    EXPECT_EQ(a[i].target_level, b[i].target_level);
  }
}

}  // namespace
}  // namespace qvt
