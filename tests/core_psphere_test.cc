#include "core/psphere.h"

#include <gtest/gtest.h>

#include "core/exact_scan.h"
#include "descriptor/generator.h"
#include "util/random.h"

namespace qvt {
namespace {

Collection Synthetic(uint64_t seed = 27) {
  GeneratorConfig config;
  config.num_images = 50;
  config.descriptors_per_image = 30;
  config.num_modes = 8;
  config.seed = seed;
  return GenerateCollection(config);
}

TEST(PSphereTest, SelfQueryFindsSelf) {
  const Collection c = Synthetic();
  const PSphereTree tree = PSphereTree::Build(&c, PSphereConfig{});
  for (size_t pos : {0u, 50u, 900u}) {
    auto result = tree.Search(c.Vector(pos), 1);
    ASSERT_TRUE(result.ok());
    ASSERT_EQ(result->size(), 1u);
    // The nearest sphere to a data point contains that point with high
    // probability; at fill factor 4 this holds for essentially all points.
    EXPECT_EQ(result->front().id, c.Id(pos));
  }
}

TEST(PSphereTest, ReplicationFactorMatchesFillFactor) {
  const Collection c = Synthetic();
  PSphereConfig config;
  config.fill_factor = 3.0;
  const PSphereTree tree = PSphereTree::Build(&c, config);
  EXPECT_NEAR(tree.ReplicationFactor(), 3.0, 0.2);
}

TEST(PSphereTest, ScansOnlyOneSphere) {
  const Collection c = Synthetic();
  PSphereConfig config;
  config.num_spheres = 32;
  config.fill_factor = 2.0;
  const PSphereTree tree = PSphereTree::Build(&c, config);
  QueryTelemetry telemetry;
  auto result = tree.Search(c.Vector(5), 10, &telemetry);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(telemetry.probes, 1u);
  EXPECT_EQ(telemetry.index_entries_scanned, tree.num_spheres());
  EXPECT_LT(telemetry.descriptors_scanned, c.size() / 4);
  EXPECT_GT(telemetry.descriptors_scanned, 0u);
}

TEST(PSphereTest, HigherFillFactorImprovesRecall) {
  const Collection c = Synthetic(33);
  PSphereConfig thin;
  thin.fill_factor = 1.0;
  PSphereConfig fat;
  fat.fill_factor = 6.0;
  const PSphereTree thin_tree = PSphereTree::Build(&c, thin);
  const PSphereTree fat_tree = PSphereTree::Build(&c, fat);

  Rng rng(3);
  const size_t k = 10;
  double thin_recall = 0, fat_recall = 0;
  for (size_t t = 0; t < 20; ++t) {
    const size_t pos = rng.Uniform(c.size());
    const auto exact = ExactScan(c, c.Vector(pos), k);
    for (auto [tree, recall] : {std::make_pair(&thin_tree, &thin_recall),
                                std::make_pair(&fat_tree, &fat_recall)}) {
      auto approx = tree->Search(c.Vector(pos), k);
      ASSERT_TRUE(approx.ok());
      for (const Neighbor& a : *approx) {
        for (const Neighbor& e : exact) {
          if (a.id == e.id) {
            *recall += 1.0;
            break;
          }
        }
      }
    }
  }
  EXPECT_GE(fat_recall, thin_recall);
  EXPECT_GT(fat_recall / (20.0 * k), 0.5);
}

TEST(PSphereTest, MoreSpheresThanPointsClamps) {
  Collection c;
  for (int i = 0; i < 5; ++i) {
    c.Append(i, std::vector<float>(kDescriptorDim, static_cast<float>(i)));
  }
  PSphereConfig config;
  config.num_spheres = 50;
  const PSphereTree tree = PSphereTree::Build(&c, config);
  EXPECT_LE(tree.num_spheres(), 5u);
  auto result = tree.Search(c.Vector(2), 2);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->front().id, 2u);
}

TEST(PSphereTest, InvalidArgumentsRejected) {
  const Collection c = Synthetic();
  const PSphereTree tree = PSphereTree::Build(&c, PSphereConfig{});
  EXPECT_TRUE(tree.Search(c.Vector(0), 0).status().IsInvalidArgument());
  std::vector<float> wrong(2, 0.0f);
  EXPECT_TRUE(tree.Search(wrong, 3).status().IsInvalidArgument());
}

}  // namespace
}  // namespace qvt
