#include "storage/index_file.h"

#include <cstring>
#include <string>
#include <vector>

#include <gtest/gtest.h>

namespace qvt {
namespace {

ChunkIndexEntry MakeEntry(size_t dim, float center, double radius,
                          uint64_t page, uint32_t pages, uint32_t count) {
  ChunkIndexEntry entry;
  entry.bounds = Sphere(std::vector<float>(dim, center), radius);
  entry.location = ChunkLocation{page, pages, count};
  return entry;
}

std::vector<uint8_t> FileBytes(MemEnv* env, const std::string& path) {
  auto bytes = ReadFileBytes(env, path);
  EXPECT_TRUE(bytes.ok());
  return std::move(bytes).value();
}

void PutBytes(MemEnv* env, const std::string& path,
              const std::vector<uint8_t>& bytes) {
  ASSERT_TRUE(WriteFileBytes(env, path, bytes.data(), bytes.size()).ok());
}

TEST(IndexFileTest, RoundTrip) {
  MemEnv env;
  std::vector<ChunkIndexEntry> entries = {
      MakeEntry(24, 1.0f, 2.5, 0, 3, 100),
      MakeEntry(24, -4.0f, 0.0, 3, 1, 7),
  };
  ASSERT_TRUE(WriteIndexFile(&env, "idx", 24, entries).ok());

  auto loaded = ReadIndexFile(&env, "idx", 24);
  ASSERT_TRUE(loaded.ok());
  ASSERT_EQ(loaded->size(), 2u);
  EXPECT_EQ((*loaded)[0].bounds.center, entries[0].bounds.center);
  EXPECT_DOUBLE_EQ((*loaded)[0].bounds.radius, 2.5);
  EXPECT_EQ((*loaded)[0].location, entries[0].location);
  EXPECT_EQ((*loaded)[1].location.first_page, 3u);
  EXPECT_EQ((*loaded)[1].location.num_descriptors, 7u);
}

// The round trip must hold at every dim parity: at odd dims the f64 radius
// would sit at a 4-mod-8 offset in a packed record, which is exactly the
// case the column sections + memcpy readers make well-defined (this test is
// the UBSan canary for satellite record-layout bugs).
TEST(IndexFileTest, RoundTripAtAwkwardDims) {
  for (const size_t dim : {size_t{1}, size_t{3}, size_t{23}, size_t{24}}) {
    SCOPED_TRACE(dim);
    MemEnv env;
    std::vector<ChunkIndexEntry> entries;
    for (size_t i = 0; i < 5; ++i) {
      entries.push_back(MakeEntry(dim, 0.5f * static_cast<float>(i) - 1.0f,
                                  0.25 * static_cast<double>(i),
                                  i * 2, 2, 10 + static_cast<uint32_t>(i)));
    }
    ASSERT_TRUE(WriteIndexFile(&env, "idx", dim, entries).ok());

    auto loaded = ReadIndexFile(&env, "idx", dim);
    ASSERT_TRUE(loaded.ok());
    ASSERT_EQ(loaded->size(), entries.size());
    for (size_t i = 0; i < entries.size(); ++i) {
      EXPECT_EQ((*loaded)[i].bounds.center, entries[i].bounds.center);
      EXPECT_DOUBLE_EQ((*loaded)[i].bounds.radius, entries[i].bounds.radius);
      EXPECT_EQ((*loaded)[i].location, entries[i].location);
    }
  }
}

TEST(IndexFileTest, HeaderDeclaresAlignedSections) {
  MemEnv env;
  ASSERT_TRUE(
      WriteIndexFile(&env, "idx", 23, {MakeEntry(23, 1.0f, 1.0, 0, 1, 1)})
          .ok());
  auto view = OpenIndexFile(&env, "idx", 23, /*mapped=*/false);
  ASSERT_TRUE(view.ok());
  const IndexFileHeader& h = view->header();
  EXPECT_EQ(h.version, kIndexFormatVersion);
  EXPECT_EQ(h.dim, 23u);
  EXPECT_EQ(h.num_chunks, 1u);
  EXPECT_EQ(h.centroids_off % kSectionAlignment, 0u);
  EXPECT_EQ(h.radii_off % kSectionAlignment, 0u);
  EXPECT_EQ(h.directory_off % kSectionAlignment, 0u);
  EXPECT_EQ(h.footer_off + kFormatFooterBytes, *env.GetFileSize("idx"));
}

TEST(IndexFileTest, EmptyIndexRejectedAtWrite) {
  MemEnv env;
  // A zero-entry index is not representable (ChunkIndex::Build rejects an
  // empty chunking first); the writer refuses rather than emitting a file
  // every reader would call corrupt.
  EXPECT_TRUE(WriteIndexFile(&env, "idx", 24, {}).IsInvalidArgument());
}

TEST(IndexFileTest, WrongDimEntryRejectedAtWrite) {
  MemEnv env;
  std::vector<ChunkIndexEntry> entries = {MakeEntry(8, 1.0f, 1.0, 0, 1, 1)};
  EXPECT_TRUE(WriteIndexFile(&env, "idx", 24, entries).IsInvalidArgument());
}

TEST(IndexFileTest, FlippedMagicRejectedWithPathAndOffset) {
  MemEnv env;
  ASSERT_TRUE(
      WriteIndexFile(&env, "idx", 24, {MakeEntry(24, 1.0f, 1.0, 0, 1, 1)})
          .ok());
  std::vector<uint8_t> bytes = FileBytes(&env, "idx");
  bytes[0] ^= 0xff;
  PutBytes(&env, "idx", bytes);

  const Status s = ReadIndexFile(&env, "idx", 24).status();
  EXPECT_TRUE(s.IsCorruption());
  EXPECT_NE(s.ToString().find("idx"), std::string::npos);
  EXPECT_NE(s.ToString().find("offset 0"), std::string::npos);
  // The mapped open runs the same envelope check.
  EXPECT_TRUE(
      OpenIndexFile(&env, "idx", 24, /*mapped=*/true).status().IsCorruption());
}

TEST(IndexFileTest, TruncationMidRecordRejected) {
  MemEnv env;
  ASSERT_TRUE(
      WriteIndexFile(&env, "idx", 24, {MakeEntry(24, 1.0f, 1.0, 0, 1, 1),
                                       MakeEntry(24, 2.0f, 1.0, 1, 1, 2)})
          .ok());
  const std::vector<uint8_t> bytes = FileBytes(&env, "idx");
  // Chop the file mid-way through the radii section.
  std::vector<uint8_t> truncated(bytes.begin(),
                                 bytes.begin() + bytes.size() / 2);
  PutBytes(&env, "idx", truncated);
  EXPECT_TRUE(ReadIndexFile(&env, "idx", 24).status().IsCorruption());
  EXPECT_TRUE(
      OpenIndexFile(&env, "idx", 24, /*mapped=*/true).status().IsCorruption());

  // Shorter than even a header.
  std::vector<uint8_t> stub(bytes.begin(), bytes.begin() + 20);
  PutBytes(&env, "idx", stub);
  EXPECT_TRUE(ReadIndexFile(&env, "idx", 24).status().IsCorruption());
}

TEST(IndexFileTest, CorruptedCrcRejectedByDeserializingOpenOnly) {
  MemEnv env;
  ASSERT_TRUE(
      WriteIndexFile(&env, "idx", 24, {MakeEntry(24, 1.0f, 1.0, 0, 1, 1)})
          .ok());
  std::vector<uint8_t> bytes = FileBytes(&env, "idx");
  bytes[kFormatHeaderBytes + 1] ^= 0x20;  // flip one centroid payload bit
  PutBytes(&env, "idx", bytes);

  const Status s = ReadIndexFile(&env, "idx", 24).status();
  EXPECT_TRUE(s.IsCorruption());
  EXPECT_NE(s.ToString().find("crc"), std::string::npos);

  // The mapped open is O(1) by contract — no CRC pass — so it admits the
  // flip; VerifyCrc is the explicit check fsck and tests run.
  auto mapped = OpenIndexFile(&env, "idx", 24, /*mapped=*/true);
  ASSERT_TRUE(mapped.ok());
  EXPECT_TRUE(mapped->VerifyCrc().IsCorruption());
}

TEST(IndexFileTest, GarbageFileRejected) {
  MemEnv env;
  std::vector<uint8_t> garbage(4096);
  for (size_t i = 0; i < garbage.size(); ++i) {
    garbage[i] = static_cast<uint8_t>(i * 37 + 11);
  }
  PutBytes(&env, "idx", garbage);
  EXPECT_TRUE(ReadIndexFile(&env, "idx", 24).status().IsCorruption());
  EXPECT_TRUE(
      OpenIndexFile(&env, "idx", 24, /*mapped=*/true).status().IsCorruption());
}

TEST(IndexFileTest, DimMismatchRejected) {
  MemEnv env;
  std::vector<ChunkIndexEntry> entries = {MakeEntry(24, 1.0f, 1.0, 0, 1, 1)};
  ASSERT_TRUE(WriteIndexFile(&env, "idx", 24, entries).ok());
  const Status s = ReadIndexFile(&env, "idx", 16).status();
  EXPECT_TRUE(s.IsCorruption());
  EXPECT_NE(s.ToString().find("dim"), std::string::npos);
}

TEST(IndexFileTest, InvalidEntryContentsRejected) {
  MemEnv env;
  // A zero-page entry is structurally invalid. Write it manually since
  // WriteIndexFile would happily serialize it.
  std::vector<ChunkIndexEntry> entries = {MakeEntry(24, 0.0f, 1.0, 0, 1, 5)};
  entries[0].location.num_pages = 0;
  ASSERT_TRUE(WriteIndexFile(&env, "idx", 24, entries).ok());
  EXPECT_TRUE(ReadIndexFile(&env, "idx", 24).status().IsCorruption());

  // A negative radius likewise — rewrite the radius column in place and
  // refresh the footer CRC so only the semantic check can object.
  entries[0].location.num_pages = 1;
  ASSERT_TRUE(WriteIndexFile(&env, "idx", 24, entries).ok());
  auto view = OpenIndexFile(&env, "idx", 24, /*mapped=*/false);
  ASSERT_TRUE(view.ok());
  std::vector<uint8_t> bytes = FileBytes(&env, "idx");
  const double bad_radius = -1.0;
  std::memcpy(bytes.data() + view->header().radii_off, &bad_radius,
              sizeof(bad_radius));
  const uint32_t crc = Crc32(bytes.data(), view->header().footer_off);
  std::memcpy(bytes.data() + view->header().footer_off, &crc, sizeof(crc));
  PutBytes(&env, "idx", bytes);
  const Status s = ReadIndexFile(&env, "idx", 24).status();
  EXPECT_TRUE(s.IsCorruption());
  EXPECT_NE(s.ToString().find("radius"), std::string::npos);
}

TEST(IndexFileTest, MappedViewIsZeroCopy) {
  MemEnv env;
  std::vector<ChunkIndexEntry> entries = {MakeEntry(24, 3.0f, 1.5, 0, 2, 9)};
  ASSERT_TRUE(WriteIndexFile(&env, "idx", 24, entries).ok());
  auto view = OpenIndexFile(&env, "idx", 24, /*mapped=*/true);
  ASSERT_TRUE(view.ok());
  // Spans point into one contiguous buffer in file-offset order, with the
  // kernel-contract alignment on the centroid matrix.
  const auto* base = reinterpret_cast<const uint8_t*>(view->centroids().data());
  EXPECT_EQ(reinterpret_cast<uintptr_t>(base) % 32, 0u);
  EXPECT_EQ(reinterpret_cast<const uint8_t*>(view->radii().data()) - base,
            static_cast<ptrdiff_t>(view->header().radii_off -
                                   view->header().centroids_off));
  EXPECT_EQ(view->centroids()[0], 3.0f);
  EXPECT_DOUBLE_EQ(view->radii()[0], 1.5);
  EXPECT_EQ(view->locations()[0].num_descriptors, 9u);
}

}  // namespace
}  // namespace qvt
