#include "storage/index_file.h"

#include <gtest/gtest.h>

namespace qvt {
namespace {

ChunkIndexEntry MakeEntry(size_t dim, float center, double radius,
                          uint64_t page, uint32_t pages, uint32_t count) {
  ChunkIndexEntry entry;
  entry.bounds = Sphere(std::vector<float>(dim, center), radius);
  entry.location = ChunkLocation{page, pages, count};
  return entry;
}

TEST(IndexFileTest, RoundTrip) {
  MemEnv env;
  std::vector<ChunkIndexEntry> entries = {
      MakeEntry(24, 1.0f, 2.5, 0, 3, 100),
      MakeEntry(24, -4.0f, 0.0, 3, 1, 7),
  };
  ASSERT_TRUE(WriteIndexFile(&env, "idx", 24, entries).ok());
  EXPECT_EQ(*env.GetFileSize("idx"), 2 * IndexEntryBytes(24));

  auto loaded = ReadIndexFile(&env, "idx", 24);
  ASSERT_TRUE(loaded.ok());
  ASSERT_EQ(loaded->size(), 2u);
  EXPECT_EQ((*loaded)[0].bounds.center, entries[0].bounds.center);
  EXPECT_DOUBLE_EQ((*loaded)[0].bounds.radius, 2.5);
  EXPECT_EQ((*loaded)[0].location, entries[0].location);
  EXPECT_EQ((*loaded)[1].location.first_page, 3u);
  EXPECT_EQ((*loaded)[1].location.num_descriptors, 7u);
}

TEST(IndexFileTest, EmptyIndexRoundTrip) {
  MemEnv env;
  ASSERT_TRUE(WriteIndexFile(&env, "idx", 24, {}).ok());
  auto loaded = ReadIndexFile(&env, "idx", 24);
  ASSERT_TRUE(loaded.ok());
  EXPECT_TRUE(loaded->empty());
}

TEST(IndexFileTest, WrongDimEntryRejectedAtWrite) {
  MemEnv env;
  std::vector<ChunkIndexEntry> entries = {MakeEntry(8, 1.0f, 1.0, 0, 1, 1)};
  EXPECT_TRUE(WriteIndexFile(&env, "idx", 24, entries).IsInvalidArgument());
}

TEST(IndexFileTest, TruncatedFileRejected) {
  MemEnv env;
  std::vector<uint8_t> garbage(IndexEntryBytes(24) - 1, 0);
  ASSERT_TRUE(WriteFileBytes(&env, "idx", garbage.data(), garbage.size()).ok());
  EXPECT_TRUE(ReadIndexFile(&env, "idx", 24).status().IsCorruption());
}

TEST(IndexFileTest, InvalidEntryContentsRejected) {
  MemEnv env;
  // A zero-page entry is structurally invalid.
  std::vector<ChunkIndexEntry> entries = {MakeEntry(24, 0.0f, 1.0, 0, 1, 5)};
  entries[0].location.num_pages = 0;
  // Write manually since WriteIndexFile would happily serialize it.
  ASSERT_TRUE(WriteIndexFile(&env, "idx", 24, entries).ok());
  EXPECT_TRUE(ReadIndexFile(&env, "idx", 24).status().IsCorruption());
}

TEST(IndexFileTest, DimMismatchDetectedViaSize) {
  MemEnv env;
  std::vector<ChunkIndexEntry> entries = {MakeEntry(24, 1.0f, 1.0, 0, 1, 1)};
  ASSERT_TRUE(WriteIndexFile(&env, "idx", 24, entries).ok());
  // Reading with dim 16 yields a size mismatch.
  EXPECT_TRUE(ReadIndexFile(&env, "idx", 16).status().IsCorruption());
}

}  // namespace
}  // namespace qvt
