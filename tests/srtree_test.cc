#include "srtree/sr_tree.h"

#include <algorithm>
#include <set>

#include <gtest/gtest.h>

#include "core/exact_scan.h"
#include "descriptor/generator.h"
#include "geometry/vec.h"
#include "util/logging.h"
#include "util/random.h"

namespace qvt {
namespace {

Collection ClusteredCollection(size_t n, uint64_t seed = 1) {
  GeneratorConfig config;
  // Over-generate (per-image counts vary), then trim to exactly n.
  config.num_images = std::max<size_t>(8, n / 30 + 8);
  config.descriptors_per_image = 30;
  config.num_modes = std::max<size_t>(2, n / 300);
  config.seed = seed;
  Collection c = GenerateCollection(config);
  QVT_CHECK(c.size() >= n);
  std::vector<size_t> keep;
  for (size_t i = 0; i < n; ++i) keep.push_back(i);
  return c.Subset(keep);
}

std::vector<float> RandomQuery(Rng* rng) {
  std::vector<float> q(kDescriptorDim);
  for (auto& x : q) x = static_cast<float>(rng->UniformDouble(0, 100));
  return q;
}

TEST(SrTreeTest, EmptyTreeBehaves) {
  Collection c;
  SrTree tree(&c, SrTreeConfig{});
  tree.BuildStatic();
  EXPECT_TRUE(tree.empty());
  EXPECT_TRUE(tree.Validate().ok());
  EXPECT_TRUE(tree.LeafPartitions().empty());
  std::vector<float> q(kDescriptorDim, 0.0f);
  EXPECT_TRUE(tree.NearestNeighbors(q, 5).empty());
}

TEST(SrTreeTest, StaticBuildValidatesAndCoversAllPoints) {
  const Collection c = ClusteredCollection(1000);
  SrTreeConfig config;
  config.leaf_capacity = 64;
  SrTree tree(&c, config);
  tree.BuildStatic();
  EXPECT_EQ(tree.size(), c.size());
  ASSERT_TRUE(tree.Validate().ok());

  const auto partitions = tree.LeafPartitions();
  std::set<size_t> seen;
  for (const auto& part : partitions) {
    for (size_t pos : part) {
      EXPECT_TRUE(seen.insert(pos).second) << "duplicate position " << pos;
    }
  }
  EXPECT_EQ(seen.size(), c.size());
}

TEST(SrTreeTest, StaticBuildLeafSizesAreUniform) {
  const Collection c = ClusteredCollection(1200);
  SrTreeConfig config;
  config.leaf_capacity = 100;
  SrTree tree(&c, config);
  tree.BuildStatic();
  const SrTreeStats stats = tree.Stats();
  // 1200/100 = 12 leaves of exactly 100 each (up to rounding).
  EXPECT_EQ(stats.num_leaves, 12u);
  EXPECT_GE(stats.min_leaf_size, 99u);
  EXPECT_LE(stats.max_leaf_size, 101u);
}

TEST(SrTreeTest, StaticBuildUniformityAcrossAwkwardSizes) {
  // 1050 points with capacity 100 -> 11 leaves of ~95.
  const Collection c = ClusteredCollection(1050);
  SrTreeConfig config;
  config.leaf_capacity = 100;
  SrTree tree(&c, config);
  tree.BuildStatic();
  const SrTreeStats stats = tree.Stats();
  EXPECT_EQ(stats.num_leaves, 11u);
  EXPECT_GE(stats.min_leaf_size, 94u);
  EXPECT_LE(stats.max_leaf_size, 97u);
}

TEST(SrTreeTest, SingleLeafWhenSmall) {
  const Collection c = ClusteredCollection(50);
  SrTreeConfig config;
  config.leaf_capacity = 100;
  SrTree tree(&c, config);
  tree.BuildStatic();
  const SrTreeStats stats = tree.Stats();
  EXPECT_EQ(stats.num_leaves, 1u);
  EXPECT_EQ(stats.height, 1u);
}

TEST(SrTreeTest, BuildStaticOnSubset) {
  const Collection c = ClusteredCollection(300);
  std::vector<size_t> subset;
  for (size_t i = 0; i < c.size(); i += 2) subset.push_back(i);
  SrTreeConfig config;
  config.leaf_capacity = 32;
  SrTree tree(&c, config);
  tree.BuildStatic(subset);
  EXPECT_EQ(tree.size(), subset.size());
  EXPECT_TRUE(tree.Validate().ok());

  const auto partitions = tree.LeafPartitions();
  std::set<size_t> seen;
  for (const auto& part : partitions) seen.insert(part.begin(), part.end());
  EXPECT_EQ(seen.size(), subset.size());
  for (size_t pos : seen) EXPECT_EQ(pos % 2, 0u);
}

TEST(SrTreeTest, DynamicInsertValidates) {
  const Collection c = ClusteredCollection(500);
  SrTreeConfig config;
  config.leaf_capacity = 16;
  config.internal_fanout = 8;
  SrTree tree(&c, config);
  for (size_t i = 0; i < c.size(); ++i) tree.Insert(i);
  EXPECT_EQ(tree.size(), c.size());
  EXPECT_TRUE(tree.Validate().ok());
  const SrTreeStats stats = tree.Stats();
  EXPECT_GT(stats.height, 1u);
  EXPECT_GT(stats.num_leaves, 10u);
}

class SrTreeNnTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SrTreeNnTest, StaticNnMatchesExactScan) {
  const Collection c = ClusteredCollection(800, GetParam());
  SrTreeConfig config;
  config.leaf_capacity = 50;
  SrTree tree(&c, config);
  tree.BuildStatic();

  Rng rng(GetParam() * 17);
  for (int trial = 0; trial < 10; ++trial) {
    const auto query = RandomQuery(&rng);
    const auto tree_nn = tree.NearestNeighbors(query, 10);
    const auto exact = ExactScan(c, query, 10);
    ASSERT_EQ(tree_nn.size(), 10u);
    for (size_t i = 0; i < 10; ++i) {
      EXPECT_NEAR(tree_nn[i].distance, exact[i].distance, 1e-6)
          << "rank " << i;
    }
  }
}

TEST_P(SrTreeNnTest, DynamicNnMatchesExactScan) {
  const Collection c = ClusteredCollection(400, GetParam() ^ 0x55);
  SrTreeConfig config;
  config.leaf_capacity = 20;
  config.internal_fanout = 6;
  SrTree tree(&c, config);
  for (size_t i = 0; i < c.size(); ++i) tree.Insert(i);

  Rng rng(GetParam() * 31);
  for (int trial = 0; trial < 10; ++trial) {
    const auto query = RandomQuery(&rng);
    const auto tree_nn = tree.NearestNeighbors(query, 5);
    const auto exact = ExactScan(c, query, 5);
    ASSERT_EQ(tree_nn.size(), 5u);
    for (size_t i = 0; i < 5; ++i) {
      EXPECT_NEAR(tree_nn[i].distance, exact[i].distance, 1e-6);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SrTreeNnTest, ::testing::Values(1, 2, 3));

TEST(SrTreeTest, NnWithKLargerThanCollection) {
  const Collection c = ClusteredCollection(20);
  SrTree tree(&c, SrTreeConfig{});
  tree.BuildStatic();
  std::vector<float> q(kDescriptorDim, 50.0f);
  const auto nn = tree.NearestNeighbors(q, 100);
  EXPECT_EQ(nn.size(), 20u);
  // Sorted ascending.
  for (size_t i = 1; i < nn.size(); ++i) {
    EXPECT_GE(nn[i].distance, nn[i - 1].distance);
  }
}

TEST_P(SrTreeNnTest, RangeSearchMatchesBruteForce) {
  const Collection c = ClusteredCollection(600, GetParam() ^ 0x99);
  SrTreeConfig config;
  config.leaf_capacity = 40;
  SrTree tree(&c, config);
  tree.BuildStatic();

  Rng rng(GetParam() * 13);
  for (int trial = 0; trial < 8; ++trial) {
    // Center the ball on a data point so it is non-empty.
    const size_t pos = rng.Uniform(c.size());
    const double radius = rng.UniformDouble(0.5, 15.0);
    const auto found = tree.RangeSearch(c.Vector(pos), radius);

    std::vector<size_t> expected;
    for (size_t i = 0; i < c.size(); ++i) {
      if (vec::Distance(c.Vector(i), c.Vector(pos)) <= radius) {
        expected.push_back(i);
      }
    }
    ASSERT_EQ(found.size(), expected.size()) << "radius " << radius;
    // Sorted ascending and within the ball.
    for (size_t i = 0; i < found.size(); ++i) {
      EXPECT_LE(found[i].distance, radius);
      if (i > 0) EXPECT_GE(found[i].distance, found[i - 1].distance);
    }
  }
}

TEST(SrTreeTest, RangeSearchEdgeCases) {
  const Collection c = ClusteredCollection(100);
  SrTree tree(&c, SrTreeConfig{});
  tree.BuildStatic();
  // Zero radius centered on a point finds at least that point.
  const auto exact_hit = tree.RangeSearch(c.Vector(7), 0.0);
  ASSERT_FALSE(exact_hit.empty());
  EXPECT_EQ(exact_hit.front().position, 7u);
  // Negative radius finds nothing.
  EXPECT_TRUE(tree.RangeSearch(c.Vector(7), -1.0).empty());
  // Huge radius finds everything.
  EXPECT_EQ(tree.RangeSearch(c.Vector(7), 1e9).size(), c.size());
}

TEST(SrTreeTest, LeafCapacityControlsChunkSize) {
  const Collection c = ClusteredCollection(2000);
  for (size_t cap : {50u, 200u, 800u}) {
    SrTreeConfig config;
    config.leaf_capacity = cap;
    SrTree tree(&c, config);
    tree.BuildStatic();
    const SrTreeStats stats = tree.Stats();
    EXPECT_LE(stats.max_leaf_size, cap);
    EXPECT_GT(stats.max_leaf_size, cap / 2);
  }
}

}  // namespace
}  // namespace qvt
