#include "cluster/birch.h"

#include <gtest/gtest.h>

#include "cluster/bag.h"
#include "descriptor/generator.h"
#include "geometry/sphere.h"
#include "util/clock.h"
#include "util/random.h"

namespace qvt {
namespace {

Collection Blobs(size_t num_blobs, size_t per_blob, uint64_t seed = 13) {
  Collection c;
  Rng rng(seed);
  DescriptorId id = 0;
  for (size_t blob = 0; blob < num_blobs; ++blob) {
    for (size_t i = 0; i < per_blob; ++i) {
      std::vector<float> v(kDescriptorDim);
      for (auto& x : v) {
        x = static_cast<float>(blob * 150.0 + rng.Gaussian(0, 1.0));
      }
      c.Append(id++, v, static_cast<ImageId>(blob));
    }
  }
  return c;
}

Collection Synthetic(uint64_t seed = 6) {
  GeneratorConfig config;
  config.num_images = 60;
  config.descriptors_per_image = 30;
  config.num_modes = 10;
  config.seed = seed;
  return GenerateCollection(config);
}

TEST(BirchTest, PartitionIsValid) {
  const Collection c = Synthetic();
  BirchChunker chunker(BirchConfig{});
  auto result = chunker.FormChunks(c);
  ASSERT_TRUE(result.ok());
  ASSERT_TRUE(ValidateChunking(*result, c.size()).ok());
  EXPECT_TRUE(result->outliers.empty());
  EXPECT_EQ(chunker.name(), "BIRCH");
  EXPECT_GT(chunker.stats().subclusters, 1u);
  EXPECT_GT(chunker.stats().final_threshold, 0.0);
}

TEST(BirchTest, RecoversSeparatedBlobs) {
  const Collection c = Blobs(4, 60);
  BirchConfig config;
  config.max_subclusters = 8;
  BirchChunker chunker(config);
  auto result = chunker.FormChunks(c);
  ASSERT_TRUE(result.ok());
  ASSERT_TRUE(ValidateChunking(*result, c.size()).ok());
  EXPECT_LE(result->chunks.size(), 8u);
  // Chunks must be pure: blob gaps (150) dwarf blob spread (~5), so no
  // threshold that keeps the count within budget can mix blobs.
  for (const auto& chunk : result->chunks) {
    const ImageId blob = c.Image(chunk[0]);
    for (size_t pos : chunk) EXPECT_EQ(c.Image(pos), blob);
  }
}

TEST(BirchTest, SubclusterBudgetRespected) {
  const Collection c = Synthetic();
  for (size_t budget : {4u, 16u, 64u}) {
    BirchConfig config;
    config.max_subclusters = budget;
    BirchChunker chunker(config);
    auto result = chunker.FormChunks(c);
    ASSERT_TRUE(result.ok());
    EXPECT_LE(result->chunks.size(), budget) << "budget " << budget;
  }
}

TEST(BirchTest, SmallerBudgetMeansCoarserChunks) {
  const Collection c = Synthetic();
  BirchConfig fine;
  fine.max_subclusters = 128;
  BirchConfig coarse;
  coarse.max_subclusters = 8;
  BirchChunker fine_chunker(fine), coarse_chunker(coarse);
  auto fine_result = fine_chunker.FormChunks(c);
  auto coarse_result = coarse_chunker.FormChunks(c);
  ASSERT_TRUE(fine_result.ok());
  ASSERT_TRUE(coarse_result.ok());
  EXPECT_GT(fine_result->chunks.size(), coarse_result->chunks.size());
  EXPECT_LE(fine_chunker.stats().final_threshold,
            coarse_chunker.stats().final_threshold);
}

TEST(BirchTest, ChunksAreSpatiallyTight) {
  const Collection c = Blobs(5, 40);
  BirchConfig config;
  config.max_subclusters = 10;
  BirchChunker chunker(config);
  auto result = chunker.FormChunks(c);
  ASSERT_TRUE(result.ok());
  for (const auto& chunk : result->chunks) {
    std::vector<std::span<const float>> pts;
    for (size_t pos : chunk) pts.push_back(c.Vector(pos));
    EXPECT_LT(CentroidBoundingSphere(pts, c.dim()).radius, 20.0);
  }
}

TEST(BirchTest, MuchFasterThanBag) {
  // The point of the lineage: BIRCH phase 1 gets BAG-flavored chunks with
  // insertion passes instead of O(C^2) merge passes.
  const Collection c = Synthetic(8);
  WallClock wall;

  Stopwatch birch_watch(&wall);
  BirchConfig birch_config;
  birch_config.max_subclusters = 30;
  BirchChunker birch(birch_config);
  ASSERT_TRUE(birch.FormChunks(c).ok());
  const double birch_seconds = birch_watch.ElapsedSeconds();

  Stopwatch bag_watch(&wall);
  BagChunker bag(30, BagConfig{});
  ASSERT_TRUE(bag.FormChunks(c).ok());
  const double bag_seconds = bag_watch.ElapsedSeconds();

  EXPECT_LT(birch_seconds, bag_seconds);
}

TEST(BirchTest, SinglePointCollection) {
  Collection c;
  c.Append(0, std::vector<float>(kDescriptorDim, 1.0f));
  BirchChunker chunker(BirchConfig{});
  auto result = chunker.FormChunks(c);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->chunks.size(), 1u);
  EXPECT_EQ(result->chunks[0].size(), 1u);
}

TEST(BirchTest, RejectsEmptyCollection) {
  Collection empty;
  BirchChunker chunker(BirchConfig{});
  EXPECT_TRUE(chunker.FormChunks(empty).status().IsInvalidArgument());
}

TEST(BirchTest, DeterministicAcrossRuns) {
  const Collection c = Synthetic(9);
  BirchChunker a(BirchConfig{}), b(BirchConfig{});
  auto ra = a.FormChunks(c);
  auto rb = b.FormChunks(c);
  ASSERT_TRUE(ra.ok());
  ASSERT_TRUE(rb.ok());
  EXPECT_EQ(ra->chunks, rb->chunks);
}

}  // namespace
}  // namespace qvt
