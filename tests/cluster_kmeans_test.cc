#include "cluster/kmeans.h"

#include <gtest/gtest.h>

#include "cluster/chunker.h"
#include "descriptor/generator.h"
#include "geometry/vec.h"

namespace qvt {
namespace {

/// Four well-separated 24-d blobs of 50 points each.
Collection FourBlobs() {
  Collection c;
  Rng rng(77);
  const float centers[4] = {0.0f, 100.0f, 200.0f, 300.0f};
  DescriptorId id = 0;
  for (int blob = 0; blob < 4; ++blob) {
    for (int i = 0; i < 50; ++i) {
      std::vector<float> v(kDescriptorDim);
      for (auto& x : v) {
        x = centers[blob] + static_cast<float>(rng.Gaussian(0, 1.0));
      }
      c.Append(id++, v, blob);
    }
  }
  return c;
}

TEST(KMeansTest, PartitionIsValid) {
  const Collection c = FourBlobs();
  KMeansConfig config;
  config.num_clusters = 4;
  KMeansChunker chunker(config);
  auto result = chunker.FormChunks(c);
  ASSERT_TRUE(result.ok());
  ASSERT_TRUE(ValidateChunking(*result, c.size()).ok());
  EXPECT_TRUE(result->outliers.empty());
  EXPECT_EQ(chunker.name(), "KM");
}

TEST(KMeansTest, RecoversSeparatedBlobs) {
  const Collection c = FourBlobs();
  KMeansConfig config;
  config.num_clusters = 4;
  KMeansChunker chunker(config);
  auto result = chunker.FormChunks(c);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->chunks.size(), 4u);
  // Every chunk should be pure: all members from one source blob.
  for (const auto& chunk : result->chunks) {
    EXPECT_EQ(chunk.size(), 50u);
    const ImageId blob = c.Image(chunk[0]);
    for (size_t pos : chunk) EXPECT_EQ(c.Image(pos), blob);
  }
}

TEST(KMeansTest, MoreClustersThanPointsClamps) {
  Collection c;
  for (int i = 0; i < 3; ++i) {
    c.Append(i, std::vector<float>(kDescriptorDim, static_cast<float>(i)));
  }
  KMeansConfig config;
  config.num_clusters = 10;
  KMeansChunker chunker(config);
  auto result = chunker.FormChunks(c);
  ASSERT_TRUE(result.ok());
  ASSERT_TRUE(ValidateChunking(*result, c.size()).ok());
  EXPECT_LE(result->chunks.size(), 3u);
}

TEST(KMeansTest, DeterministicForSeed) {
  const Collection c = FourBlobs();
  KMeansConfig config;
  config.num_clusters = 4;
  config.seed = 5;
  KMeansChunker a(config), b(config);
  auto ra = a.FormChunks(c);
  auto rb = b.FormChunks(c);
  ASSERT_TRUE(ra.ok());
  ASSERT_TRUE(rb.ok());
  EXPECT_EQ(ra->chunks, rb->chunks);
}

TEST(KMeansTest, RandomInitAlsoWorks) {
  const Collection c = FourBlobs();
  KMeansConfig config;
  config.num_clusters = 4;
  config.plus_plus_init = false;
  KMeansChunker chunker(config);
  auto result = chunker.FormChunks(c);
  ASSERT_TRUE(result.ok());
  ASSERT_TRUE(ValidateChunking(*result, c.size()).ok());
}

TEST(KMeansTest, ConvergesEarlyOnEasyData) {
  const Collection c = FourBlobs();
  KMeansConfig config;
  config.num_clusters = 4;
  config.max_iterations = 50;
  KMeansChunker chunker(config);
  ASSERT_TRUE(chunker.FormChunks(c).ok());
  EXPECT_LT(chunker.last_iterations(), 50u);
}

TEST(KMeansTest, RejectsEmptyCollection) {
  Collection empty;
  KMeansChunker chunker(KMeansConfig{});
  EXPECT_TRUE(chunker.FormChunks(empty).status().IsInvalidArgument());
}

TEST(KMeansTest, LowerVarianceThanRoundRobinAssignment) {
  GeneratorConfig gen;
  gen.num_images = 40;
  gen.descriptors_per_image = 25;
  gen.num_modes = 8;
  const Collection c = GenerateCollection(gen);

  KMeansConfig config;
  config.num_clusters = 8;
  KMeansChunker chunker(config);
  auto result = chunker.FormChunks(c);
  ASSERT_TRUE(result.ok());

  // Within-cluster sum of squares must beat a random assignment of the same
  // cluster count.
  auto wcss = [&](const std::vector<std::vector<size_t>>& chunks) {
    double total = 0;
    for (const auto& chunk : chunks) {
      std::vector<std::span<const float>> pts;
      for (size_t pos : chunk) pts.push_back(c.Vector(pos));
      const auto mean = vec::Mean(pts, c.dim());
      for (const auto& p : pts) total += vec::SquaredDistance(mean, p);
    }
    return total;
  };
  std::vector<std::vector<size_t>> random_chunks(8);
  for (size_t i = 0; i < c.size(); ++i) random_chunks[i % 8].push_back(i);
  EXPECT_LT(wcss(result->chunks), 0.5 * wcss(random_chunks));
}

}  // namespace
}  // namespace qvt
