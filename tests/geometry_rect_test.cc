#include "geometry/rect.h"

#include <cmath>

#include <gtest/gtest.h>

#include "geometry/vec.h"
#include "util/random.h"

namespace qvt {
namespace {

TEST(RectTest, PointRectIsDegenerate) {
  std::vector<float> p = {1, 2};
  Rect r{std::span<const float>(p)};
  EXPECT_TRUE(r.Contains(p));
  EXPECT_DOUBLE_EQ(r.MinDistanceTo(p), 0.0);
  EXPECT_DOUBLE_EQ(r.HalfDiagonal(), 0.0);
}

TEST(RectTest, ExtendToCoverPoints) {
  Rect r;
  std::vector<float> a = {0, 0};
  std::vector<float> b = {2, -3};
  r.ExtendToCover(a);
  r.ExtendToCover(b);
  EXPECT_TRUE(r.Contains(a));
  EXPECT_TRUE(r.Contains(b));
  std::vector<float> mid = {1, -1};
  EXPECT_TRUE(r.Contains(mid));
  std::vector<float> out = {3, 0};
  EXPECT_FALSE(r.Contains(out));
}

TEST(RectTest, MinDistanceOutsideAxis) {
  Rect r({0, 0}, {2, 2});
  std::vector<float> p = {4, 1};
  EXPECT_DOUBLE_EQ(r.MinDistanceTo(p), 2.0);
  std::vector<float> corner = {5, 6};
  EXPECT_DOUBLE_EQ(r.MinDistanceTo(corner), 5.0);  // 3-4-5 from (2,2)
}

TEST(RectTest, MaxDistanceIsFarthestCorner) {
  Rect r({0, 0}, {2, 2});
  std::vector<float> p = {-1, -1};
  EXPECT_DOUBLE_EQ(r.MaxDistanceTo(p), vec::Distance(p, std::vector<float>{2, 2}));
}

TEST(RectTest, CenterAndHalfDiagonal) {
  Rect r({0, 0}, {4, 2});
  const auto center = r.Center();
  EXPECT_FLOAT_EQ(center[0], 2.0f);
  EXPECT_FLOAT_EQ(center[1], 1.0f);
  EXPECT_NEAR(r.HalfDiagonal(), std::sqrt(4.0 + 1.0), 1e-9);
}

TEST(RectTest, ExtendToCoverRect) {
  Rect a({0, 0}, {1, 1});
  Rect b({2, -1}, {3, 0});
  a.ExtendToCover(b);
  std::vector<float> p = {3, -1};
  EXPECT_TRUE(a.Contains(p));
  EXPECT_FLOAT_EQ(a.min[1], -1.0f);
  EXPECT_FLOAT_EQ(a.max[0], 3.0f);
}

TEST(BoundingRectTest, CoversAllPointsExactly) {
  std::vector<std::vector<float>> points = {{1, 5}, {-2, 3}, {0, 7}};
  std::vector<std::span<const float>> spans(points.begin(), points.end());
  const Rect r = BoundingRect(spans, 2);
  EXPECT_FLOAT_EQ(r.min[0], -2.0f);
  EXPECT_FLOAT_EQ(r.max[0], 1.0f);
  EXPECT_FLOAT_EQ(r.min[1], 3.0f);
  EXPECT_FLOAT_EQ(r.max[1], 7.0f);
}

TEST(BoundingRectTest, EmptyGivesZeroRect) {
  const Rect r = BoundingRect({}, 3);
  EXPECT_EQ(r.dim(), 3u);
  EXPECT_DOUBLE_EQ(r.HalfDiagonal(), 0.0);
}

class RectPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RectPropertyTest, MinMaxDistanceBracketTrueDistances) {
  Rng rng(GetParam());
  for (int iter = 0; iter < 50; ++iter) {
    // Random rect from two corners.
    std::vector<float> lo(4), hi(4);
    for (size_t d = 0; d < 4; ++d) {
      const double a = rng.UniformDouble(-5, 5);
      const double b = rng.UniformDouble(-5, 5);
      lo[d] = static_cast<float>(std::min(a, b));
      hi[d] = static_cast<float>(std::max(a, b));
    }
    Rect r(lo, hi);
    std::vector<float> q(4);
    for (auto& x : q) x = static_cast<float>(rng.UniformDouble(-10, 10));

    // Sample points inside the rect; all must respect the bounds.
    for (int s = 0; s < 20; ++s) {
      std::vector<float> p(4);
      for (size_t d = 0; d < 4; ++d) {
        p[d] = static_cast<float>(rng.UniformDouble(lo[d], hi[d]));
      }
      const double dist = vec::Distance(p, q);
      EXPECT_GE(dist, r.MinDistanceTo(q) - 1e-5);
      EXPECT_LE(dist, r.MaxDistanceTo(q) + 1e-5);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RectPropertyTest, ::testing::Values(3, 7, 9));

}  // namespace
}  // namespace qvt
