#include "util/thread_pool.h"

#include <atomic>
#include <stdexcept>
#include <vector>

#include <gtest/gtest.h>

namespace qvt {
namespace {

TEST(ThreadPoolTest, RunsEverySubmittedTask) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 1000; ++i) {
    pool.Submit([&counter] { counter.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 1000);
}

TEST(ThreadPoolTest, WaitIsABarrierAndPoolIsReusable) {
  ThreadPool pool(3);
  std::atomic<int> counter{0};
  for (int round = 1; round <= 5; ++round) {
    for (int i = 0; i < 50; ++i) {
      pool.Submit([&counter] { counter.fetch_add(1); });
    }
    pool.Wait();
    EXPECT_EQ(counter.load(), round * 50);
  }
}

TEST(ThreadPoolTest, ZeroThreadsClampedToOne) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.num_threads(), 1u);
  std::atomic<bool> ran{false};
  pool.Submit([&ran] { ran.store(true); });
  pool.Wait();
  EXPECT_TRUE(ran.load());
}

TEST(ThreadPoolTest, DestructorDrainsOutstandingTasks) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 200; ++i) {
      pool.Submit([&counter] { counter.fetch_add(1); });
    }
    // No Wait(): the destructor must finish the queue before joining.
  }
  EXPECT_EQ(counter.load(), 200);
}

TEST(ThreadPoolTest, WaitWithNoTasksReturnsImmediately) {
  ThreadPool pool(2);
  pool.Wait();
  SUCCEED();
}

TEST(ThreadPoolTest, WaitRethrowsTaskException) {
  ThreadPool pool(3);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&counter] { counter.fetch_add(1); });
  }
  pool.Submit([] { throw std::runtime_error("shard failed"); });
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&counter] { counter.fetch_add(1); });
  }
  try {
    pool.Wait();
    FAIL() << "expected Wait() to rethrow the task exception";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "shard failed");
  }
  // The failure did not kill its worker: every other task still ran.
  EXPECT_EQ(counter.load(), 200);
}

TEST(ThreadPoolTest, PoolIsReusableAfterRethrow) {
  ThreadPool pool(2);
  pool.Submit([] { throw std::runtime_error("boom"); });
  EXPECT_THROW(pool.Wait(), std::runtime_error);
  // Wait() cleared the captured exception; the next round is clean.
  std::atomic<int> counter{0};
  for (int i = 0; i < 50; ++i) {
    pool.Submit([&counter] { counter.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 50);
}

TEST(ThreadPoolTest, OnlyFirstExceptionIsKept) {
  ThreadPool pool(1);  // one worker: tasks run in submission order
  pool.Submit([] { throw std::runtime_error("first"); });
  pool.Submit([] { throw std::runtime_error("second"); });
  try {
    pool.Wait();
    FAIL() << "expected Wait() to rethrow";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "first");
  }
  pool.Wait();  // the later exception was swallowed, not deferred
}

TEST(ThreadPoolTest, DestructorSwallowsPendingException) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(2);
    pool.Submit([] { throw std::runtime_error("never observed"); });
    for (int i = 0; i < 20; ++i) {
      pool.Submit([&counter] { counter.fetch_add(1); });
    }
    // No Wait(): destruction must drain the queue and discard the
    // exception instead of terminating.
  }
  EXPECT_EQ(counter.load(), 20);
}

}  // namespace
}  // namespace qvt
