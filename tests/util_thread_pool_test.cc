#include "util/thread_pool.h"

#include <atomic>
#include <vector>

#include <gtest/gtest.h>

namespace qvt {
namespace {

TEST(ThreadPoolTest, RunsEverySubmittedTask) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 1000; ++i) {
    pool.Submit([&counter] { counter.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 1000);
}

TEST(ThreadPoolTest, WaitIsABarrierAndPoolIsReusable) {
  ThreadPool pool(3);
  std::atomic<int> counter{0};
  for (int round = 1; round <= 5; ++round) {
    for (int i = 0; i < 50; ++i) {
      pool.Submit([&counter] { counter.fetch_add(1); });
    }
    pool.Wait();
    EXPECT_EQ(counter.load(), round * 50);
  }
}

TEST(ThreadPoolTest, ZeroThreadsClampedToOne) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.num_threads(), 1u);
  std::atomic<bool> ran{false};
  pool.Submit([&ran] { ran.store(true); });
  pool.Wait();
  EXPECT_TRUE(ran.load());
}

TEST(ThreadPoolTest, DestructorDrainsOutstandingTasks) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 200; ++i) {
      pool.Submit([&counter] { counter.fetch_add(1); });
    }
    // No Wait(): the destructor must finish the queue before joining.
  }
  EXPECT_EQ(counter.load(), 200);
}

TEST(ThreadPoolTest, WaitWithNoTasksReturnsImmediately) {
  ThreadPool pool(2);
  pool.Wait();
  SUCCEED();
}

}  // namespace
}  // namespace qvt
