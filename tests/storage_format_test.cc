#include "storage/format.h"

#include <cstring>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "util/env.h"

namespace qvt {
namespace {

constexpr uint64_t kTestMagic = 0x3130545345545651ull;  // "QVTEST01"

TEST(Crc32Test, KnownVectors) {
  // Standard IEEE 802.3 check values.
  EXPECT_EQ(Crc32("", 0), 0x00000000u);
  EXPECT_EQ(Crc32("123456789", 9), 0xcbf43926u);
  EXPECT_EQ(Crc32("a", 1), 0xe8b7be43u);
}

TEST(Crc32Test, SeedChainsIncrementalUpdates) {
  const std::string data = "the quick brown fox";
  const uint32_t whole = Crc32(data.data(), data.size());
  const uint32_t part = Crc32(data.data(), 7);
  EXPECT_EQ(Crc32(data.data() + 7, data.size() - 7, part), whole);
}

TEST(AlignUpTest, RoundsToSectionAlignment) {
  EXPECT_EQ(AlignUp(0), 0u);
  EXPECT_EQ(AlignUp(1), 64u);
  EXPECT_EQ(AlignUp(64), 64u);
  EXPECT_EQ(AlignUp(65), 128u);
  EXPECT_EQ(AlignUp(10, 8), 16u);
}

TEST(LoadTest, ReadsUnalignedLittleEndianFields) {
  // One spare byte up front forces every load through an unaligned
  // address — the exact case the memcpy readers exist for (UBSan-fatal
  // as a plain cast).
  uint8_t buf[1 + 8 + 8 + 4 + 8] = {0};
  const uint32_t u32 = 0xdeadbeefu;
  const uint64_t u64 = 0x0123456789abcdefull;
  const float f32 = 3.5f;
  const double f64 = -2.25;
  std::memcpy(buf + 1, &u32, 4);
  std::memcpy(buf + 5, &u64, 8);
  std::memcpy(buf + 13, &f32, 4);
  std::memcpy(buf + 17, &f64, 8);
  EXPECT_EQ(LoadU32(buf + 1), u32);
  EXPECT_EQ(LoadU64(buf + 5), u64);
  EXPECT_EQ(LoadF32(buf + 13), f32);
  EXPECT_EQ(LoadF64(buf + 17), f64);
}

// Writes a tiny two-section file through FormatWriter and re-opens it with
// FormatView: envelope, alignment, and CRC must all line up.
TEST(FormatWriterTest, RoundTripEnvelope) {
  MemEnv env;
  auto writer = FormatWriter::Create(&env, "f", kTestMagic);
  ASSERT_TRUE(writer.ok());

  std::vector<uint8_t> header(kFormatHeaderBytes, 0);
  std::memcpy(header.data(), &kTestMagic, sizeof(kTestMagic));
  const uint32_t version = 1;
  std::memcpy(header.data() + 8, &version, sizeof(version));
  ASSERT_TRUE(writer->Append(header.data(), header.size()).ok());

  auto s1 = writer->BeginSection();
  ASSERT_TRUE(s1.ok());
  EXPECT_EQ(*s1 % kSectionAlignment, 0u);
  ASSERT_TRUE(writer->Append("abc", 3).ok());

  auto s2 = writer->BeginSection();
  ASSERT_TRUE(s2.ok());
  EXPECT_EQ(*s2 % kSectionAlignment, 0u);
  EXPECT_GT(*s2, *s1);
  ASSERT_TRUE(writer->Append("defgh", 5).ok());

  const uint64_t footer_off = writer->offset();
  ASSERT_TRUE(writer->Finish().ok());

  // The temp file is gone; only the final name remains.
  EXPECT_FALSE(env.FileExists("f.tmp"));
  auto size = env.GetFileSize("f");
  ASSERT_TRUE(size.ok());
  EXPECT_EQ(*size, footer_off + kFormatFooterBytes);

  auto bytes = ReadFileCopy(&env, "f");
  ASSERT_TRUE(bytes.ok());
  const FormatView view((*bytes)->bytes(), "f");
  EXPECT_TRUE(view.CheckEnvelope(kTestMagic, version).ok());
  EXPECT_TRUE(view.VerifyCrc().ok());
  auto section = view.Section(*s2, 5, 1, "payload");
  ASSERT_TRUE(section.ok());
  EXPECT_EQ(std::memcmp(*section, "defgh", 5), 0);
}

TEST(FormatViewTest, RejectsWrongMagicVersionAndTruncation) {
  MemEnv env;
  auto writer = FormatWriter::Create(&env, "f", kTestMagic);
  ASSERT_TRUE(writer.ok());
  std::vector<uint8_t> header(kFormatHeaderBytes, 0);
  std::memcpy(header.data(), &kTestMagic, sizeof(kTestMagic));
  const uint32_t version = 1;
  std::memcpy(header.data() + 8, &version, sizeof(version));
  ASSERT_TRUE(writer->Append(header.data(), header.size()).ok());
  ASSERT_TRUE(writer->Finish().ok());

  auto bytes = ReadFileBytes(&env, "f");
  ASSERT_TRUE(bytes.ok());

  {
    std::vector<uint8_t> bad = *bytes;
    bad[0] ^= 0xff;
    const Status s =
        FormatView(bad, "f").CheckEnvelope(kTestMagic, version);
    EXPECT_TRUE(s.IsCorruption());
    EXPECT_NE(s.ToString().find("f"), std::string::npos);
    EXPECT_NE(s.ToString().find("offset 0"), std::string::npos);
  }
  {
    const Status s =
        FormatView(*bytes, "f").CheckEnvelope(kTestMagic, version + 1);
    EXPECT_TRUE(s.IsCorruption());
  }
  {
    std::vector<uint8_t> bad(bytes->begin(), bytes->begin() + 20);
    EXPECT_TRUE(FormatView(bad, "f")
                    .CheckEnvelope(kTestMagic, version)
                    .IsCorruption());
  }
  {
    std::vector<uint8_t> bad = *bytes;
    bad[kFormatHeaderBytes - 1] ^= 0x01;  // payload flip: envelope passes,
    const FormatView view(bad, "f");      // the CRC catches it
    EXPECT_TRUE(view.CheckEnvelope(kTestMagic, version).ok());
    const Status s = view.VerifyCrc();
    EXPECT_TRUE(s.IsCorruption());
    EXPECT_NE(s.ToString().find("crc"), std::string::npos);
  }
}

TEST(FormatViewTest, SectionBoundsAreOverflowSafe) {
  std::vector<uint8_t> bytes(kFormatHeaderBytes + kFormatFooterBytes + 64, 0);
  const FormatView view(bytes, "f");
  EXPECT_TRUE(view.Section(kFormatHeaderBytes, 4, 16, "ok").ok());
  // Count * record size would wrap around 2^64 without the guarded check.
  EXPECT_TRUE(view.Section(kFormatHeaderBytes, 1ull << 62, 16, "huge")
                  .status()
                  .IsCorruption());
  EXPECT_TRUE(
      view.Section(bytes.size() * 2, 1, 1, "past end").status().IsCorruption());
}

}  // namespace
}  // namespace qvt
