#include "core/va_file.h"

#include <gtest/gtest.h>

#include "core/exact_scan.h"
#include "descriptor/generator.h"
#include "geometry/vec.h"
#include "util/random.h"

namespace qvt {
namespace {

Collection Synthetic(uint64_t seed = 19) {
  GeneratorConfig config;
  config.num_images = 50;
  config.descriptors_per_image = 30;
  config.num_modes = 8;
  config.seed = seed;
  return GenerateCollection(config);
}

class VaFileExactTest : public ::testing::TestWithParam<size_t> {};

TEST_P(VaFileExactTest, MatchesSequentialScan) {
  const Collection c = Synthetic();
  VaFileConfig config;
  config.bits_per_dim = GetParam();
  const VaFile va = VaFile::Build(&c, config);

  Rng rng(2);
  for (int trial = 0; trial < 10; ++trial) {
    std::vector<float> query(c.dim());
    for (auto& x : query) x = static_cast<float>(rng.UniformDouble(20, 80));
    auto va_result = va.Search(query, 10);
    ASSERT_TRUE(va_result.ok());
    const auto exact = ExactScan(c, query, 10);
    ASSERT_EQ(va_result->size(), 10u);
    for (size_t i = 0; i < 10; ++i) {
      EXPECT_NEAR((*va_result)[i].distance, exact[i].distance, 1e-6)
          << "bits=" << GetParam() << " rank " << i;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Bits, VaFileExactTest, ::testing::Values(2, 4, 6, 8));

TEST(VaFileTest, FilteringIsEffective) {
  const Collection c = Synthetic();
  VaFileConfig config;
  config.bits_per_dim = 6;
  const VaFile va = VaFile::Build(&c, config);

  QueryTelemetry telemetry;
  auto result = va.Search(c.Vector(100), 10, &telemetry);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(telemetry.index_entries_scanned, c.size());
  EXPECT_TRUE(telemetry.exact);
  // The whole point of the VA-file: only a small fraction of vectors get
  // refined.
  EXPECT_LT(telemetry.descriptors_scanned, c.size() / 4);
  EXPECT_LE(telemetry.descriptors_scanned, telemetry.candidates_examined);
  EXPECT_GE(telemetry.descriptors_scanned, 10u);
}

TEST(VaFileTest, MoreBitsRefineFewerVectors) {
  const Collection c = Synthetic();
  VaFileConfig coarse_cfg;
  coarse_cfg.bits_per_dim = 2;
  VaFileConfig fine_cfg;
  fine_cfg.bits_per_dim = 8;
  const VaFile coarse = VaFile::Build(&c, coarse_cfg);
  const VaFile fine = VaFile::Build(&c, fine_cfg);

  size_t coarse_refinements = 0, fine_refinements = 0;
  Rng rng(4);
  for (int t = 0; t < 10; ++t) {
    const size_t pos = rng.Uniform(c.size());
    QueryTelemetry a, b;
    ASSERT_TRUE(coarse.Search(c.Vector(pos), 10, &a).ok());
    ASSERT_TRUE(fine.Search(c.Vector(pos), 10, &b).ok());
    coarse_refinements += a.descriptors_scanned;
    fine_refinements += b.descriptors_scanned;
  }
  EXPECT_LT(fine_refinements, coarse_refinements);
}

TEST(VaFileTest, BoundsBracketTrueDistance) {
  // Indirect check through the public API: the exact search with pruning
  // must still produce the true k-NN even for adversarial (corner) queries,
  // which fails if any lower bound overshoots the true distance.
  const Collection c = Synthetic();
  const VaFile va = VaFile::Build(&c, VaFileConfig{});
  std::vector<float> corner(c.dim(), -1000.0f);
  auto result = va.Search(corner, 5);
  ASSERT_TRUE(result.ok());
  const auto exact = ExactScan(c, corner, 5);
  for (size_t i = 0; i < 5; ++i) {
    EXPECT_NEAR((*result)[i].distance, exact[i].distance, 1e-6);
  }
}

TEST(VaFileTest, ApproximateVariantTradesQualityForWork) {
  const Collection c = Synthetic();
  const VaFile va = VaFile::Build(&c, VaFileConfig{});

  QueryTelemetry limited_telemetry;
  auto limited = va.SearchApproximate(c.Vector(7), 10, /*max_refinements=*/10,
                                      &limited_telemetry);
  ASSERT_TRUE(limited.ok());
  EXPECT_LE(limited_telemetry.descriptors_scanned, 10u);

  // With an unlimited budget the same call is exact.
  auto unlimited = va.SearchApproximate(c.Vector(7), 10, c.size());
  ASSERT_TRUE(unlimited.ok());
  const auto exact = ExactScan(c, c.Vector(7), 10);
  for (size_t i = 0; i < 10; ++i) {
    EXPECT_NEAR((*unlimited)[i].distance, exact[i].distance, 1e-6);
  }
  // The limited answer can be worse, never better.
  EXPECT_GE(limited->back().distance, exact.back().distance - 1e-9);
}

TEST(VaFileTest, CompressionIsSubstantial) {
  const Collection c = Synthetic();
  VaFileConfig config;
  config.bits_per_dim = 4;
  const VaFile va = VaFile::Build(&c, config);
  // One byte per dim per vector vs 4 bytes of float: at least 4x smaller
  // than raw vectors (the real VA-file packs bits; we store one byte/dim).
  EXPECT_EQ(va.ApproximationBytes(), c.size() * c.dim());
  EXPECT_LT(va.ApproximationBytes(), c.size() * c.dim() * sizeof(float));
}

TEST(VaFileTest, InvalidArgumentsRejected) {
  const Collection c = Synthetic();
  const VaFile va = VaFile::Build(&c, VaFileConfig{});
  EXPECT_TRUE(va.Search(c.Vector(0), 0).status().IsInvalidArgument());
  std::vector<float> wrong(5, 0.0f);
  EXPECT_TRUE(va.Search(wrong, 5).status().IsInvalidArgument());
}

}  // namespace
}  // namespace qvt
