#include "core/evaluation.h"

#include <gtest/gtest.h>

#include "core/exact_scan.h"
#include "descriptor/generator.h"
#include "descriptor/workload.h"
#include "util/random.h"

namespace qvt {
namespace {

TEST(TruthSetTest, MembershipAndCounting) {
  std::vector<DescriptorId> ids = {1, 2, 3};
  TruthSet truth(ids);
  EXPECT_EQ(truth.size(), 3u);
  EXPECT_TRUE(truth.Contains(2));
  EXPECT_FALSE(truth.Contains(9));

  std::vector<Neighbor> candidates = {{2, 0.1}, {9, 0.2}, {1, 0.3}};
  EXPECT_EQ(truth.CountFound(candidates), 2u);
}

TEST(PrecisionTest, PerfectAndEmpty) {
  std::vector<DescriptorId> truth = {5, 6, 7};
  std::vector<Neighbor> perfect = {{5, 0.0}, {6, 0.1}, {7, 0.2}};
  EXPECT_DOUBLE_EQ(PrecisionAtK(perfect, truth, 3), 1.0);
  EXPECT_DOUBLE_EQ(PrecisionAtK({}, truth, 3), 0.0);
}

TEST(PrecisionTest, PartialOverlap) {
  std::vector<DescriptorId> truth = {1, 2, 3, 4};
  std::vector<Neighbor> result = {{1, 0.0}, {9, 0.1}, {3, 0.2}, {8, 0.3}};
  EXPECT_DOUBLE_EQ(PrecisionAtK(result, truth, 4), 0.5);
}

TEST(PrecisionTest, TruncatesBothSidesToK) {
  std::vector<DescriptorId> truth = {1, 2, 3, 4, 5};
  std::vector<Neighbor> result = {{1, 0.0}, {2, 0.1}, {9, 0.2}};
  // k = 2: only first two of each side considered.
  EXPECT_DOUBLE_EQ(PrecisionAtK(result, truth, 2), 1.0);
  // k = 3: hits {1,2}, miss {9}.
  EXPECT_NEAR(PrecisionAtK(result, truth, 3), 2.0 / 3.0, 1e-12);
}

TEST(ExactScanTest, FindsSelfAsNearest) {
  GeneratorConfig gen;
  gen.num_images = 20;
  gen.descriptors_per_image = 20;
  gen.num_modes = 4;
  const Collection c = GenerateCollection(gen);
  const auto nn = ExactScan(c, c.Vector(17), 5);
  ASSERT_EQ(nn.size(), 5u);
  EXPECT_EQ(nn[0].id, c.Id(17));
  EXPECT_DOUBLE_EQ(nn[0].distance, 0.0);
  for (size_t i = 1; i < nn.size(); ++i) {
    EXPECT_GE(nn[i].distance, nn[i - 1].distance);
  }
}

TEST(GroundTruthTest, ComputeMatchesExactScan) {
  GeneratorConfig gen;
  gen.num_images = 20;
  gen.descriptors_per_image = 20;
  gen.num_modes = 4;
  const Collection c = GenerateCollection(gen);
  Rng rng(1);
  const Workload dq = MakeDatasetQueries(c, 10, &rng);
  const GroundTruth truth = GroundTruth::Compute(c, dq, 7);

  EXPECT_EQ(truth.k(), 7u);
  EXPECT_EQ(truth.num_queries(), 10u);
  for (size_t q = 0; q < 10; ++q) {
    const auto expected = ExactScan(c, dq.Query(q), 7);
    const auto ids = truth.TruthFor(q);
    for (size_t i = 0; i < 7; ++i) EXPECT_EQ(ids[i], expected[i].id);
  }
}

TEST(GroundTruthTest, SaveLoadRoundTrip) {
  GeneratorConfig gen;
  gen.num_images = 15;
  gen.descriptors_per_image = 15;
  gen.num_modes = 3;
  const Collection c = GenerateCollection(gen);
  Rng rng(2);
  const Workload dq = MakeDatasetQueries(c, 5, &rng);
  const GroundTruth truth = GroundTruth::Compute(c, dq, 4);

  MemEnv env;
  ASSERT_TRUE(truth.Save(&env, "truth").ok());
  auto loaded = GroundTruth::Load(&env, "truth");
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->k(), 4u);
  EXPECT_EQ(loaded->num_queries(), 5u);
  for (size_t q = 0; q < 5; ++q) {
    const auto a = truth.TruthFor(q);
    const auto b = loaded->TruthFor(q);
    EXPECT_TRUE(std::equal(a.begin(), a.end(), b.begin()));
  }
}

TEST(GroundTruthTest, LoadRejectsGarbage) {
  MemEnv env;
  std::vector<uint8_t> tiny(4, 0);
  ASSERT_TRUE(WriteFileBytes(&env, "bad", tiny.data(), tiny.size()).ok());
  EXPECT_TRUE(GroundTruth::Load(&env, "bad").status().IsCorruption());

  // Valid header but truncated payload.
  uint64_t header[2] = {30, 100};
  ASSERT_TRUE(WriteFileBytes(&env, "bad2", header, sizeof(header)).ok());
  EXPECT_TRUE(GroundTruth::Load(&env, "bad2").status().IsCorruption());
}

}  // namespace
}  // namespace qvt
