#include "descriptor/generator.h"

#include <algorithm>
#include <set>

#include <gtest/gtest.h>

#include "geometry/vec.h"

namespace qvt {
namespace {

GeneratorConfig SmallConfig() {
  GeneratorConfig config;
  config.num_images = 50;
  config.descriptors_per_image = 40;
  config.num_modes = 10;
  config.seed = 99;
  return config;
}

TEST(GeneratorTest, DeterministicForSameConfig) {
  const Collection a = GenerateCollection(SmallConfig());
  const Collection b = GenerateCollection(SmallConfig());
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.Id(i), b.Id(i));
    for (size_t d = 0; d < a.dim(); ++d) {
      EXPECT_EQ(a.Vector(i)[d], b.Vector(i)[d]);
    }
  }
}

TEST(GeneratorTest, DifferentSeedsDiffer) {
  GeneratorConfig other = SmallConfig();
  other.seed = 100;
  const Collection a = GenerateCollection(SmallConfig());
  const Collection b = GenerateCollection(other);
  ASSERT_EQ(a.dim(), b.dim());
  // Same structure but different values.
  bool any_diff = false;
  for (size_t i = 0; i < std::min(a.size(), b.size()) && !any_diff; ++i) {
    any_diff = a.Vector(i)[0] != b.Vector(i)[0];
  }
  EXPECT_TRUE(any_diff);
}

TEST(GeneratorTest, SizeNearExpectation) {
  const Collection c = GenerateCollection(SmallConfig());
  const double expected = 50.0 * 40.0;
  EXPECT_GT(c.size(), expected * 0.7);
  EXPECT_LT(c.size(), expected * 1.3);
}

TEST(GeneratorTest, SequentialIdsAndImageIds) {
  const Collection c = GenerateCollection(SmallConfig());
  std::set<ImageId> images;
  for (size_t i = 0; i < c.size(); ++i) {
    EXPECT_EQ(c.Id(i), static_cast<DescriptorId>(i));
    images.insert(c.Image(i));
  }
  EXPECT_EQ(images.size(), 50u);  // every image contributed (count >= 1)
}

TEST(GeneratorTest, DescriptorsOfSameImageAreCorrelated) {
  const Collection c = GenerateCollection(SmallConfig());
  // Average distance between two descriptors of the same image should be
  // well below the average distance across random pairs.
  double same_sum = 0, cross_sum = 0;
  int same_n = 0, cross_n = 0;
  for (size_t i = 0; i + 1 < c.size() && same_n < 500; ++i) {
    if (c.Image(i) == c.Image(i + 1)) {
      same_sum += vec::Distance(c.Vector(i), c.Vector(i + 1));
      ++same_n;
    }
  }
  for (size_t i = 0; i < 500; ++i) {
    const size_t a = (i * 97) % c.size();
    const size_t b = (i * 389 + c.size() / 2) % c.size();
    if (c.Image(a) == c.Image(b)) continue;
    cross_sum += vec::Distance(c.Vector(a), c.Vector(b));
    ++cross_n;
  }
  ASSERT_GT(same_n, 50);
  ASSERT_GT(cross_n, 50);
  EXPECT_LT(same_sum / same_n, 0.8 * cross_sum / cross_n);
}

TEST(GeneratorTest, ModeCentersMatchBetweenCalls) {
  const auto a = GeneratorModeCenters(SmallConfig());
  const auto b = GeneratorModeCenters(SmallConfig());
  ASSERT_EQ(a.size(), 10u);
  EXPECT_EQ(a, b);
}

TEST(GeneratorTest, RareImagesExist) {
  GeneratorConfig config = SmallConfig();
  config.num_images = 400;
  config.outlier_fraction = 0.5;  // make rare images plentiful
  const Collection c = GenerateCollection(config);

  // Rare images put all their descriptors far from the mode region;
  // compute per-image mean distance to the global centroid and check for a
  // clearly bimodal spread.
  const size_t dim = c.dim();
  std::vector<double> centroid(dim, 0.0);
  for (size_t i = 0; i < c.size(); ++i) {
    for (size_t d = 0; d < dim; ++d) centroid[d] += c.Vector(i)[d];
  }
  for (auto& x : centroid) x /= static_cast<double>(c.size());
  std::vector<float> centroid_f(centroid.begin(), centroid.end());

  size_t far_points = 0;
  for (size_t i = 0; i < c.size(); ++i) {
    if (vec::Distance(centroid_f, c.Vector(i)) > 150.0) ++far_points;
  }
  EXPECT_GT(far_points, c.size() / 20);
}

TEST(GeneratorTest, ZeroOutlierFractionHasNoFarBundles) {
  GeneratorConfig config = SmallConfig();
  config.outlier_fraction = 0.0;
  const Collection c = GenerateCollection(config);
  const auto modes = GeneratorModeCenters(config);
  // Every descriptor should be near some mode.
  size_t stray = 0;
  for (size_t i = 0; i < c.size(); ++i) {
    double best = 1e18;
    for (const auto& m : modes) {
      best = std::min(best, vec::Distance(m, c.Vector(i)));
    }
    if (best > 60.0) ++stray;
  }
  EXPECT_EQ(stray, 0u);
}

TEST(GeneratorTest, ZeroHeavyModeWeightIsByteIdentical) {
  GeneratorConfig config = SmallConfig();
  config.heavy_mode_weight = 0.0;  // the default — must not perturb anything
  const Collection a = GenerateCollection(SmallConfig());
  const Collection b = GenerateCollection(config);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    for (size_t d = 0; d < a.dim(); ++d) {
      EXPECT_EQ(a.Vector(i)[d], b.Vector(i)[d]);
    }
  }
}

TEST(GeneratorTest, HeavyModeWeightSkewsOneMode) {
  GeneratorConfig config = SmallConfig();
  config.num_images = 200;
  config.outlier_fraction = 0.0;
  config.heavy_mode_weight = 0.5;
  const Collection c = GenerateCollection(config);
  const auto modes = GeneratorModeCenters(config);

  // Count descriptors nearest to each mode; the heavy mode should hold
  // about half of the collection, far above the 1/num_modes fair share.
  std::vector<size_t> per_mode(modes.size(), 0);
  for (size_t i = 0; i < c.size(); ++i) {
    size_t best = 0;
    double best_dist = 1e18;
    for (size_t m = 0; m < modes.size(); ++m) {
      const double dist = vec::Distance(modes[m], c.Vector(i));
      if (dist < best_dist) {
        best_dist = dist;
        best = m;
      }
    }
    ++per_mode[best];
  }
  const size_t heaviest = *std::max_element(per_mode.begin(), per_mode.end());
  const double heavy_share =
      static_cast<double>(heaviest) / static_cast<double>(c.size());
  EXPECT_GT(heavy_share, 0.35);
  EXPECT_LT(heavy_share, 0.65);
}

}  // namespace
}  // namespace qvt
