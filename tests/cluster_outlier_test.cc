#include "cluster/outlier.h"

#include <gtest/gtest.h>

#include "geometry/vec.h"

namespace qvt {
namespace {

Collection LineCollection() {
  // Points at distance 0..9 from the origin along dim 0; centroid at 4.5.
  Collection c(kDescriptorDim);
  for (int i = 0; i < 10; ++i) {
    std::vector<float> v(kDescriptorDim, 0.0f);
    v[0] = static_cast<float>(i);
    c.Append(static_cast<DescriptorId>(i), v);
  }
  return c;
}

TEST(OutlierTest, CentroidDistanceSplit) {
  const Collection c = LineCollection();
  // Centroid is at 4.5 along dim 0; distance ranges 0.5..4.5.
  const OutlierSplit split = SplitByCentroidDistance(c, 3.0);
  // |i - 4.5| > 3 -> i in {0, 1, 8, 9}.
  EXPECT_EQ(split.outliers.size(), 4u);
  EXPECT_EQ(split.retained.size(), 6u);
}

TEST(OutlierTest, ThresholdAboveAllKeepsEverything) {
  const Collection c = LineCollection();
  const OutlierSplit split = SplitByCentroidDistance(c, 100.0);
  EXPECT_TRUE(split.outliers.empty());
  EXPECT_EQ(split.retained.size(), c.size());
}

TEST(OutlierTest, FractionTargeting) {
  const Collection c = LineCollection();
  double threshold = 0.0;
  const OutlierSplit split =
      SplitByCentroidDistanceFraction(c, 0.2, &threshold);
  EXPECT_EQ(split.outliers.size(), 2u);
  EXPECT_EQ(split.retained.size(), 8u);
  EXPECT_GT(threshold, 0.0);
}

TEST(OutlierTest, FractionZeroKeepsAll) {
  const Collection c = LineCollection();
  const OutlierSplit split = SplitByCentroidDistanceFraction(c, 0.0);
  EXPECT_TRUE(split.outliers.empty());
}

TEST(OutlierTest, SplitByNormUsesRawLength) {
  const Collection c = LineCollection();
  // Norm of point i is exactly i.
  const OutlierSplit split = SplitByNorm(c, 6.5);
  EXPECT_EQ(split.outliers.size(), 3u);  // 7, 8, 9
  for (size_t pos : split.outliers) {
    EXPECT_GT(vec::Norm(c.Vector(pos)), 6.5);
  }
}

TEST(OutlierTest, SplitsArePartitions) {
  const Collection c = LineCollection();
  for (double threshold : {0.0, 2.0, 5.0}) {
    const OutlierSplit split = SplitByCentroidDistance(c, threshold);
    EXPECT_EQ(split.retained.size() + split.outliers.size(), c.size());
  }
}

}  // namespace
}  // namespace qvt
