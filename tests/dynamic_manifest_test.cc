// Durability tests of the QVTDYN01 manifest: save/reopen roundtrip, fsck,
// corruption and truncation detection, crash atomicity, and garbage
// collection of merged-away shard artifacts.
#include "dynamic/manifest.h"

#include <gtest/gtest.h>

#include <map>
#include <string>
#include <vector>

#include "core/chunk_index.h"
#include "descriptor/generator.h"
#include "dynamic/dynamic_index.h"
#include "storage/format.h"
#include "util/logging.h"

namespace qvt {
namespace {

Collection TestCollection(size_t n) {
  GeneratorConfig config;
  config.num_images = n / 10 + 1;
  config.descriptors_per_image = 10;
  config.num_modes = 4;
  config.seed = 33;
  Collection generated = GenerateCollection(config);
  QVT_CHECK(generated.size() >= n);
  Collection out;
  for (size_t i = 0; i < n; ++i) {
    out.Append(static_cast<DescriptorId>(i), generated.Vector(i),
               generated.Image(i));
  }
  return out;
}

DynamicOptions Options(const std::string& method = "chunked",
                       size_t buffer = 40) {
  DynamicOptions options;
  options.method = method;
  options.extension.buffer_capacity = buffer;
  options.extension.scale_factor = 3;
  options.target_chunk_size = 20;
  return options;
}

/// Builds an index with shards, tombstones, and a part-full buffer — every
/// manifest section populated — and saves it.
std::unique_ptr<DynamicIndex> BuildAndSave(MemEnv* env,
                                           const Collection& data,
                                           const std::string& base,
                                           const std::string& method) {
  auto created = DynamicIndex::Create(env, base, Options(method));
  QVT_CHECK_OK(created.status());
  std::unique_ptr<DynamicIndex> index = std::move(*created);
  for (size_t i = 0; i < data.size(); ++i) {
    QVT_CHECK_OK(index->Insert(data.Id(i), data.Vector(i), data.Image(i)));
  }
  for (DescriptorId id = 1; id < 60; id += 7) {
    QVT_CHECK_OK(index->Delete(id));
  }
  QVT_CHECK_OK(index->Save());
  return index;
}

TEST(DynamicManifestTest, SaveReopenRoundtripPreservesEverything) {
  MemEnv env;
  Collection data = TestCollection(150);
  auto index = BuildAndSave(&env, data, "dyn", "chunked");
  ASSERT_GT(index->num_shards(), 0u);
  ASSERT_GT(index->buffer_rows(), 0u);
  ASSERT_GT(index->num_tombstones(), 0u);

  auto reopened = DynamicIndex::Open(&env, "dyn", Options());
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  EXPECT_EQ((*reopened)->num_shards(), index->num_shards());
  EXPECT_EQ((*reopened)->buffer_rows(), index->buffer_rows());
  EXPECT_EQ((*reopened)->num_tombstones(), index->num_tombstones());
  EXPECT_EQ((*reopened)->live_rows(), index->live_rows());

  // Identical answers, including post-reopen mutations.
  for (size_t qi = 0; qi < 5; ++qi) {
    const auto query = data.Vector(qi * 29 % data.size());
    auto before = index->Search(query, 8, StopRule::Exact());
    auto after = (*reopened)->Search(query, 8, StopRule::Exact());
    ASSERT_TRUE(before.ok());
    ASSERT_TRUE(after.ok());
    ASSERT_EQ(before->neighbors.size(), after->neighbors.size());
    for (size_t i = 0; i < before->neighbors.size(); ++i) {
      EXPECT_EQ(before->neighbors[i].id, after->neighbors[i].id);
      EXPECT_DOUBLE_EQ(before->neighbors[i].distance,
                       after->neighbors[i].distance);
    }
  }

  // Sequence numbers continue where they left off: a reopened index
  // rejects live duplicates and accepts new rows.
  EXPECT_TRUE((*reopened)->Insert(data.Id(0), data.Vector(0))
                  .IsAlreadyExists());
  EXPECT_TRUE((*reopened)->Insert(5000, data.Vector(3)).ok());
  EXPECT_TRUE((*reopened)->Delete(5000).ok());
}

TEST(DynamicManifestTest, MmapAndDeserializeAnswerIdentically) {
  MemEnv env;
  Collection data = TestCollection(120);
  BuildAndSave(&env, data, "dyn", "chunked");

  DynamicOptions mmap_options = Options();
  mmap_options.open_mode = IndexOpenMode::kMmap;
  DynamicOptions deserialize_options = Options();
  deserialize_options.open_mode = IndexOpenMode::kDeserialize;
  auto mapped = DynamicIndex::Open(&env, "dyn", mmap_options);
  auto copied = DynamicIndex::Open(&env, "dyn", deserialize_options);
  ASSERT_TRUE(mapped.ok()) << mapped.status().ToString();
  ASSERT_TRUE(copied.ok()) << copied.status().ToString();
  for (size_t qi = 0; qi < 6; ++qi) {
    const auto query = data.Vector(qi * 17 % data.size());
    auto a = (*mapped)->Search(query, 6, StopRule::Exact());
    auto b = (*copied)->Search(query, 6, StopRule::Exact());
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    ASSERT_EQ(a->neighbors.size(), b->neighbors.size());
    for (size_t i = 0; i < a->neighbors.size(); ++i) {
      EXPECT_EQ(a->neighbors[i].id, b->neighbors[i].id);
      EXPECT_DOUBLE_EQ(a->neighbors[i].distance, b->neighbors[i].distance);
    }
  }
}

TEST(DynamicManifestTest, ReopenWorksForMemoryResidentMethods) {
  MemEnv env;
  Collection data = TestCollection(120);
  BuildAndSave(&env, data, "dyn-lsh", "lsh");
  auto reopened = DynamicIndex::Open(&env, "dyn-lsh");
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  EXPECT_EQ((*reopened)->options().method, "lsh");
  auto result = (*reopened)->Search(data.Vector(10), 3, StopRule::Exact());
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(result->neighbors.empty());
}

TEST(DynamicManifestTest, FsckPassesOnHealthyIndex) {
  MemEnv env;
  Collection data = TestCollection(150);
  BuildAndSave(&env, data, "dyn", "chunked");
  const Status status = FsckDynamic(&env, "dyn");
  EXPECT_TRUE(status.ok()) << status.ToString();
}

TEST(DynamicManifestTest, FsckRejectsCorruptionTruncationAndMissingShards) {
  MemEnv env;
  Collection data = TestCollection(150);
  BuildAndSave(&env, data, "dyn", "chunked");
  const std::string manifest_path = DynamicManifestPath("dyn");
  auto bytes = ReadFileBytes(&env, manifest_path);
  ASSERT_TRUE(bytes.ok());

  {
    // One flipped payload byte fails the CRC.
    std::vector<uint8_t> bad = *bytes;
    bad[bad.size() / 2] ^= 0x40;
    ASSERT_TRUE(
        WriteFileBytes(&env, manifest_path, bad.data(), bad.size()).ok());
    EXPECT_TRUE(FsckDynamic(&env, "dyn").IsCorruption());
    EXPECT_TRUE(LoadDynamicManifest(&env, "dyn").status().IsCorruption());
  }
  {
    // Truncation is caught before any record is trusted.
    std::vector<uint8_t> bad(bytes->begin(),
                             bytes->begin() + bytes->size() / 2);
    ASSERT_TRUE(
        WriteFileBytes(&env, manifest_path, bad.data(), bad.size()).ok());
    EXPECT_TRUE(FsckDynamic(&env, "dyn").IsCorruption());
  }

  // Restore the manifest, then break a shard artifact.
  ASSERT_TRUE(
      WriteFileBytes(&env, manifest_path, bytes->data(), bytes->size()).ok());
  ASSERT_TRUE(FsckDynamic(&env, "dyn").ok());
  auto manifest = LoadDynamicManifest(&env, "dyn");
  ASSERT_TRUE(manifest.ok());
  ASSERT_FALSE(manifest->shards.empty());
  const std::string shard_desc =
      ShardArtifactBase("dyn", manifest->shards[0].id) + ".desc";
  ASSERT_TRUE(env.DeleteFile(shard_desc).ok());
  const Status missing = FsckDynamic(&env, "dyn");
  EXPECT_FALSE(missing.ok());
}

TEST(DynamicManifestTest, LoadRejectsBadHeaderFields) {
  MemEnv env;
  Collection data = TestCollection(80);
  BuildAndSave(&env, data, "dyn", "exact-scan");
  const std::string manifest_path = DynamicManifestPath("dyn");
  auto bytes = ReadFileBytes(&env, manifest_path);
  ASSERT_TRUE(bytes.ok());
  // Wrong magic: not a dynamic manifest at all.
  std::vector<uint8_t> bad = *bytes;
  bad[0] ^= 0xff;
  ASSERT_TRUE(
      WriteFileBytes(&env, manifest_path, bad.data(), bad.size()).ok());
  EXPECT_TRUE(LoadDynamicManifest(&env, "dyn").status().IsCorruption());
}

TEST(DynamicManifestTest, SaveDeletesMergedAwayShardArtifacts) {
  MemEnv env;
  Collection data = TestCollection(300);
  auto created = DynamicIndex::Create(&env, "dyn", Options("chunked", 30));
  ASSERT_TRUE(created.ok());
  DynamicIndex& index = **created;
  for (size_t i = 0; i < data.size(); ++i) {
    ASSERT_TRUE(index.Insert(data.Id(i), data.Vector(i)).ok());
  }
  ASSERT_TRUE(index.Flush().ok());
  ASSERT_TRUE(index.Save().ok());
  // Count shard descriptor files on disk: after Save exactly the live
  // shards remain (merged-away artifacts were garbage-collected).
  auto manifest = LoadDynamicManifest(&env, "dyn");
  ASSERT_TRUE(manifest.ok());
  size_t on_disk = 0;
  for (uint32_t id = 0; id < 200; ++id) {
    if (env.FileExists(ShardArtifactBase("dyn", id) + ".desc")) ++on_disk;
  }
  EXPECT_EQ(on_disk, manifest->shards.size());

  // Compaction rewrites everything into one shard; after the next Save
  // only that shard's artifacts survive.
  ASSERT_TRUE(index.Compact().ok());
  ASSERT_TRUE(index.Save().ok());
  on_disk = 0;
  for (uint32_t id = 0; id < 200; ++id) {
    if (env.FileExists(ShardArtifactBase("dyn", id) + ".desc")) ++on_disk;
  }
  EXPECT_EQ(on_disk, 1u);
  EXPECT_TRUE(FsckDynamic(&env, "dyn").ok());
}

TEST(DynamicManifestTest, UnsavedMutationsNeverTouchTheOldManifest) {
  MemEnv env;
  Collection data = TestCollection(120);
  auto index = BuildAndSave(&env, data, "dyn", "exact-scan");
  const size_t saved_live = index->live_rows();

  // Mutate heavily without saving — flushes write shard artifacts, but the
  // durable manifest must still describe the saved state (crash = reopen).
  for (size_t i = 0; i < 60; ++i) {
    ASSERT_TRUE(index->Insert(10000 + i, data.Vector(i)).ok());
  }
  ASSERT_TRUE(index->Flush().ok());

  auto reopened = DynamicIndex::Open(&env, "dyn");
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  EXPECT_EQ((*reopened)->live_rows(), saved_live);
  EXPECT_TRUE(FsckDynamic(&env, "dyn").ok());
}

TEST(DynamicManifestTest, ManifestRecordsExactState) {
  MemEnv env;
  Collection data = TestCollection(150);
  auto index = BuildAndSave(&env, data, "dyn", "chunked");
  auto manifest = LoadDynamicManifest(&env, "dyn");
  ASSERT_TRUE(manifest.ok());
  EXPECT_EQ(manifest->dim, kDescriptorDim);
  EXPECT_EQ(manifest->method, "chunked");
  EXPECT_EQ(manifest->shards.size(), index->num_shards());
  EXPECT_EQ(manifest->buffer_rows(), index->buffer_rows());
  EXPECT_EQ(manifest->tombstones.size(), index->num_tombstones());
  // Tombstones sorted by id, seqs in range.
  for (size_t i = 1; i < manifest->tombstones.size(); ++i) {
    EXPECT_LT(manifest->tombstones[i - 1].first,
              manifest->tombstones[i].first);
  }
  for (const auto& [id, seq] : manifest->tombstones) {
    EXPECT_GE(seq, 1u);
    EXPECT_LT(seq, manifest->next_seq);
  }
  for (const auto& record : manifest->shards) {
    EXPECT_GT(record.rows, 0u);
    EXPECT_LE(record.seq_floor, record.created_seq);
    EXPECT_LT(record.created_seq, manifest->next_seq);
  }
}

}  // namespace
}  // namespace qvt
