#include "core/lsh.h"

#include <gtest/gtest.h>

#include "core/exact_scan.h"
#include "descriptor/generator.h"
#include "util/random.h"

namespace qvt {
namespace {

Collection Synthetic(uint64_t seed = 23) {
  GeneratorConfig config;
  config.num_images = 50;
  config.descriptors_per_image = 30;
  config.num_modes = 8;
  config.seed = seed;
  return GenerateCollection(config);
}

TEST(LshTest, SelfQueryFindsSelf) {
  const Collection c = Synthetic();
  const LshIndex index = LshIndex::Build(&c, LshConfig{});
  for (size_t pos : {0u, 77u, 700u}) {
    auto result = index.Search(c.Vector(pos), 5);
    ASSERT_TRUE(result.ok());
    ASSERT_FALSE(result->empty());
    // The query point collides with itself in every table.
    EXPECT_EQ(result->front().id, c.Id(pos));
    EXPECT_DOUBLE_EQ(result->front().distance, 0.0);
  }
}

TEST(LshTest, ReasonableRecallOnClusteredData) {
  const Collection c = Synthetic();
  LshConfig config;
  config.num_tables = 16;
  config.hashes_per_table = 6;
  const LshIndex index = LshIndex::Build(&c, config);

  Rng rng(9);
  const size_t k = 10;
  double recall = 0.0;
  const size_t trials = 20;
  for (size_t t = 0; t < trials; ++t) {
    const size_t pos = rng.Uniform(c.size());
    auto approx = index.Search(c.Vector(pos), k);
    ASSERT_TRUE(approx.ok());
    const auto exact = ExactScan(c, c.Vector(pos), k);
    for (const Neighbor& a : *approx) {
      for (const Neighbor& e : exact) {
        if (a.id == e.id) {
          recall += 1.0;
          break;
        }
      }
    }
  }
  EXPECT_GT(recall / (trials * k), 0.4);
}

TEST(LshTest, CandidateSetIsSubLinear) {
  const Collection c = Synthetic();
  LshConfig config;
  config.num_tables = 8;
  config.hashes_per_table = 10;  // selective buckets
  const LshIndex index = LshIndex::Build(&c, config);
  QueryTelemetry telemetry;
  auto result = index.Search(c.Vector(3), 10, &telemetry);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(telemetry.probes, 8u);
  EXPECT_LT(telemetry.descriptors_scanned, c.size() / 2);
  EXPECT_GT(telemetry.descriptors_scanned, 0u);
}

TEST(LshTest, MoreTablesImproveRecall) {
  const Collection c = Synthetic(29);
  LshConfig few;
  few.num_tables = 2;
  LshConfig many;
  many.num_tables = 24;
  const LshIndex few_index = LshIndex::Build(&c, few);
  const LshIndex many_index = LshIndex::Build(&c, many);

  Rng rng(11);
  const size_t k = 10;
  double few_recall = 0, many_recall = 0;
  for (size_t t = 0; t < 15; ++t) {
    const size_t pos = rng.Uniform(c.size());
    const auto exact = ExactScan(c, c.Vector(pos), k);
    for (auto [index, recall] :
         {std::make_pair(&few_index, &few_recall),
          std::make_pair(&many_index, &many_recall)}) {
      auto approx = index->Search(c.Vector(pos), k);
      ASSERT_TRUE(approx.ok());
      for (const Neighbor& a : *approx) {
        for (const Neighbor& e : exact) {
          if (a.id == e.id) {
            *recall += 1.0;
            break;
          }
        }
      }
    }
  }
  EXPECT_GE(many_recall, few_recall);
}

TEST(LshTest, ResultsSortedAndDeduplicated) {
  const Collection c = Synthetic();
  const LshIndex index = LshIndex::Build(&c, LshConfig{});
  auto result = index.Search(c.Vector(50), 20);
  ASSERT_TRUE(result.ok());
  for (size_t i = 1; i < result->size(); ++i) {
    EXPECT_GE((*result)[i].distance, (*result)[i - 1].distance);
    for (size_t j = 0; j < i; ++j) {
      EXPECT_NE((*result)[i].id, (*result)[j].id);
    }
  }
}

TEST(LshTest, DataDrivenBucketWidthIsPositive) {
  const Collection c = Synthetic();
  const LshIndex index = LshIndex::Build(&c, LshConfig{});
  EXPECT_GT(index.bucket_width(), 0.0);
}

TEST(LshTest, InvalidArgumentsRejected) {
  const Collection c = Synthetic();
  const LshIndex index = LshIndex::Build(&c, LshConfig{});
  EXPECT_TRUE(index.Search(c.Vector(0), 0).status().IsInvalidArgument());
  std::vector<float> wrong(2, 0.0f);
  EXPECT_TRUE(index.Search(wrong, 5).status().IsInvalidArgument());
}

TEST(LshTest, DeterministicForSeed) {
  const Collection c = Synthetic();
  const LshIndex a = LshIndex::Build(&c, LshConfig{});
  const LshIndex b = LshIndex::Build(&c, LshConfig{});
  auto ra = a.Search(c.Vector(1), 10);
  auto rb = b.Search(c.Vector(1), 10);
  ASSERT_TRUE(ra.ok());
  ASSERT_TRUE(rb.ok());
  ASSERT_EQ(ra->size(), rb->size());
  for (size_t i = 0; i < ra->size(); ++i) {
    EXPECT_EQ((*ra)[i].id, (*rb)[i].id);
  }
}

}  // namespace
}  // namespace qvt
