// End-to-end integration: the full pipeline of the paper on the real
// filesystem — generate, form chunks with every chunker, persist the
// two-file index, reopen it cold, search under every stop rule, and verify
// against a sequential scan. Exercises the same path as the bench harness
// but hermetically and at test scale.

#include <filesystem>

#include <gtest/gtest.h>

#include "cluster/bag.h"
#include "cluster/birch.h"
#include "cluster/kmeans.h"
#include "cluster/round_robin.h"
#include "cluster/srtree_chunker.h"
#include "core/chunk_index.h"
#include "core/evaluation.h"
#include "core/exact_scan.h"
#include "core/image_search.h"
#include "core/searcher.h"
#include "descriptor/generator.h"
#include "descriptor/workload.h"
#include "util/logging.h"
#include "util/random.h"

namespace qvt {
namespace {

class IntegrationTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    dir_ = new std::filesystem::path(
        std::filesystem::temp_directory_path() /
        ("qvt_integration_" + std::to_string(::getpid())));
    std::filesystem::create_directories(*dir_);

    GeneratorConfig generator;
    generator.num_images = 80;
    generator.descriptors_per_image = 40;
    generator.num_modes = 12;
    generator.seed = 20260705;
    collection_ = new Collection(GenerateCollection(generator));
  }

  static void TearDownTestSuite() {
    std::filesystem::remove_all(*dir_);
    delete collection_;
    delete dir_;
  }

  static std::string Base(const std::string& name) {
    return (*dir_ / name).string();
  }

  static std::filesystem::path* dir_;
  static Collection* collection_;
};

std::filesystem::path* IntegrationTest::dir_ = nullptr;
Collection* IntegrationTest::collection_ = nullptr;

TEST_F(IntegrationTest, CollectionRoundTripsThroughDisk) {
  const std::string path = Base("col.desc");
  ASSERT_TRUE(collection_->Save(Env::Posix(), path).ok());
  auto loaded = Collection::Load(Env::Posix(), path);
  ASSERT_TRUE(loaded.ok());
  ASSERT_EQ(loaded->size(), collection_->size());
  Rng rng(1);
  for (int i = 0; i < 50; ++i) {
    const size_t pos = rng.Uniform(collection_->size());
    EXPECT_EQ(loaded->Id(pos), collection_->Id(pos));
    EXPECT_EQ(loaded->Image(pos), collection_->Image(pos));
    for (size_t d = 0; d < collection_->dim(); ++d) {
      EXPECT_EQ(loaded->Vector(pos)[d], collection_->Vector(pos)[d]);
    }
  }
}

TEST_F(IntegrationTest, EveryChunkerProducesASearchableIndex) {
  SrTreeChunker sr(250);
  RoundRobinChunker rr(250);
  KMeansConfig km_config;
  km_config.num_clusters = 12;
  KMeansChunker km(km_config);
  BirchConfig birch_config;
  birch_config.max_subclusters = 24;
  BirchChunker birch(birch_config);
  BagChunker bag(24, BagConfig{});

  const std::pair<Chunker*, const char*> chunkers[] = {
      {&sr, "sr"}, {&rr, "rr"}, {&km, "km"}, {&birch, "birch"}, {&bag, "bag"}};

  Rng rng(7);
  std::vector<float> query(collection_->dim());
  for (auto& x : query) x = static_cast<float>(rng.UniformDouble(30, 70));

  for (const auto& [chunker, tag] : chunkers) {
    auto chunking = chunker->FormChunks(*collection_);
    ASSERT_TRUE(chunking.ok()) << tag;
    ASSERT_TRUE(ValidateChunking(*chunking, collection_->size()).ok()) << tag;

    // Build on the real filesystem, then reopen cold.
    const ChunkIndexPaths paths = ChunkIndexPaths::ForBase(Base(tag));
    auto built = ChunkIndex::Build(*collection_, *chunking, Env::Posix(),
                                   paths);
    ASSERT_TRUE(built.ok()) << tag;
    auto index = ChunkIndex::Open(Env::Posix(), paths);
    ASSERT_TRUE(index.ok()) << tag;
    ASSERT_TRUE(index->Validate().ok()) << tag;

    // Exact search must match a sequential scan of the retained set.
    std::vector<size_t> retained_positions;
    for (const auto& chunk : chunking->chunks) {
      retained_positions.insert(retained_positions.end(), chunk.begin(),
                                chunk.end());
    }
    const Collection retained = collection_->Subset(retained_positions);
    const auto truth = ExactScan(retained, query, 10);

    Searcher searcher(&*index, DiskCostModel());
    auto exact = searcher.Search(query, 10, StopRule::Exact());
    ASSERT_TRUE(exact.ok()) << tag;
    EXPECT_TRUE(exact->exact) << tag;
    for (size_t i = 0; i < 10; ++i) {
      EXPECT_NEAR(exact->neighbors[i].distance, truth[i].distance, 1e-6)
          << tag << " rank " << i;
    }

    // Approximate modes are well-formed and cheaper.
    auto budget = searcher.Search(query, 10, StopRule::MaxChunks(2));
    ASSERT_TRUE(budget.ok()) << tag;
    EXPECT_LE(budget->chunks_read, 2u) << tag;
    EXPECT_LE(budget->model_elapsed_micros, exact->model_elapsed_micros)
        << tag;
  }
}

TEST_F(IntegrationTest, ImageSearchOnDiskIndex) {
  SrTreeChunker chunker(250);
  auto chunking = chunker.FormChunks(*collection_);
  ASSERT_TRUE(chunking.ok());
  const ChunkIndexPaths paths = ChunkIndexPaths::ForBase(Base("img"));
  auto index =
      ChunkIndex::Build(*collection_, *chunking, Env::Posix(), paths);
  ASSERT_TRUE(index.ok());
  Searcher searcher(&*index, DiskCostModel());

  std::vector<ImageId> image_of(collection_->size());
  for (size_t i = 0; i < collection_->size(); ++i) {
    image_of[collection_->Id(i)] = collection_->Image(i);
  }
  ImageSearcher image_search(&searcher, image_of);

  // Noisy copy of image 40.
  Rng rng(9);
  std::vector<float> pirate;
  for (size_t i = 0; i < collection_->size(); ++i) {
    if (collection_->Image(i) != 40) continue;
    for (float x : collection_->Vector(i)) {
      pirate.push_back(static_cast<float>(x + rng.Gaussian(0, 0.3)));
    }
  }
  auto matches = image_search.Search(pirate, collection_->dim(),
                                     ImageSearchOptions{});
  ASSERT_TRUE(matches.ok());
  ASSERT_FALSE(matches->empty());
  EXPECT_EQ(matches->front().image, 40u);
}

TEST_F(IntegrationTest, WorkloadPipelineMatchesPaperSemantics) {
  // DQ queries over a built index: run to conclusion and verify the
  // final precision is exactly 1 against ground truth of the same set.
  SrTreeChunker chunker(300);
  auto chunking = chunker.FormChunks(*collection_);
  ASSERT_TRUE(chunking.ok());
  auto index = ChunkIndex::Build(*collection_, *chunking, Env::Posix(),
                                 ChunkIndexPaths::ForBase(Base("wl")));
  ASSERT_TRUE(index.ok());

  Rng rng(17);
  const Workload dq = MakeDatasetQueries(*collection_, 15, &rng);
  const GroundTruth truth = GroundTruth::Compute(*collection_, dq, 10);
  Searcher searcher(&*index, DiskCostModel());
  for (size_t q = 0; q < dq.num_queries(); ++q) {
    auto result = searcher.Search(dq.Query(q), 10, StopRule::Exact());
    ASSERT_TRUE(result.ok());
    EXPECT_DOUBLE_EQ(
        PrecisionAtK(result->neighbors, truth.TruthFor(q), 10), 1.0);
  }
}

}  // namespace
}  // namespace qvt
