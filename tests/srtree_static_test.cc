#include "srtree/static_sr_tree.h"

#include <algorithm>
#include <cstring>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "descriptor/generator.h"
#include "srtree/sr_tree.h"
#include "util/logging.h"
#include "util/random.h"

namespace qvt {
namespace {

Collection ClusteredCollection(size_t n, uint64_t seed = 1) {
  GeneratorConfig config;
  config.num_images = std::max<size_t>(8, n / 30 + 8);
  config.descriptors_per_image = 30;
  config.num_modes = std::max<size_t>(2, n / 300);
  config.seed = seed;
  Collection c = GenerateCollection(config);
  QVT_CHECK(c.size() >= n);
  std::vector<size_t> keep;
  for (size_t i = 0; i < n; ++i) keep.push_back(i);
  return c.Subset(keep);
}

std::vector<float> RandomQuery(Rng* rng) {
  std::vector<float> q(kDescriptorDim);
  for (auto& x : q) x = static_cast<float>(rng->UniformDouble(0, 100));
  return q;
}

SrTree BuildTree(const Collection* c, size_t leaf_capacity = 64) {
  SrTreeConfig config;
  config.leaf_capacity = leaf_capacity;
  SrTree tree(c, config);
  tree.BuildStatic();
  return tree;
}

std::vector<uint8_t> FileBytes(MemEnv* env, const std::string& path) {
  auto bytes = ReadFileBytes(env, path);
  EXPECT_TRUE(bytes.ok());
  return std::move(bytes).value();
}

void PutBytes(MemEnv* env, const std::string& path,
              const std::vector<uint8_t>& bytes) {
  ASSERT_TRUE(WriteFileBytes(env, path, bytes.data(), bytes.size()).ok());
}

TEST(StaticSrTreeTest, SaveRejectsEmptyTree) {
  Collection c;
  SrTree tree(&c, SrTreeConfig{});
  tree.BuildStatic();
  MemEnv env;
  EXPECT_TRUE(tree.SaveStatic(&env, "t").IsInvalidArgument());
}

// Save, open both ways, and require bit-identical k-NN answers and leaf
// partitions against the in-memory tree — the static file is an interchange
// format, not an approximation.
TEST(StaticSrTreeTest, SearchIsBitIdenticalToInMemoryTree) {
  const Collection c = ClusteredCollection(900, 5);
  const SrTree tree = BuildTree(&c);
  MemEnv env;
  ASSERT_TRUE(tree.SaveStatic(&env, "t").ok());

  for (const bool mapped : {true, false}) {
    SCOPED_TRACE(mapped ? "mapped" : "deserialized");
    auto loaded = StaticSrTree::Open(&env, "t", mapped);
    ASSERT_TRUE(loaded.ok());
    EXPECT_TRUE(loaded->VerifyCrc().ok());
    EXPECT_TRUE(loaded->ValidateStructure().ok());
    EXPECT_EQ(loaded->num_points(), tree.size());

    EXPECT_EQ(loaded->LeafPartitions(), tree.LeafPartitions());

    Rng rng(17);
    for (size_t trial = 0; trial < 25; ++trial) {
      const std::vector<float> q = RandomQuery(&rng);
      const auto expected = tree.NearestNeighbors(q, 10);
      const auto got = loaded->NearestNeighbors(q, 10);
      ASSERT_EQ(got.size(), expected.size());
      for (size_t i = 0; i < got.size(); ++i) {
        EXPECT_EQ(got[i].position, expected[i].position);
        EXPECT_EQ(got[i].distance, expected[i].distance);  // bitwise
      }
    }
  }
}

// LoadStatic rebuilds a full in-memory tree whose searches and structure
// match the original exactly.
TEST(StaticSrTreeTest, LoadStaticRoundTripsTheTree) {
  const Collection c = ClusteredCollection(700, 9);
  const SrTree tree = BuildTree(&c, 48);
  MemEnv env;
  ASSERT_TRUE(tree.SaveStatic(&env, "t").ok());

  auto loaded = SrTree::LoadStatic(&c, &env, "t");
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->size(), tree.size());
  ASSERT_TRUE(loaded->Validate().ok());
  EXPECT_EQ(loaded->LeafPartitions(), tree.LeafPartitions());

  Rng rng(23);
  for (size_t trial = 0; trial < 25; ++trial) {
    const std::vector<float> q = RandomQuery(&rng);
    const auto expected = tree.NearestNeighbors(q, 7);
    const auto got = loaded->NearestNeighbors(q, 7);
    ASSERT_EQ(got.size(), expected.size());
    for (size_t i = 0; i < got.size(); ++i) {
      EXPECT_EQ(got[i].position, expected[i].position);
      EXPECT_EQ(got[i].distance, expected[i].distance);
    }
  }
}

TEST(StaticSrTreeTest, CorruptedFilesAreRejectedWithStatus) {
  const Collection c = ClusteredCollection(400, 3);
  const SrTree tree = BuildTree(&c);
  MemEnv env;
  ASSERT_TRUE(tree.SaveStatic(&env, "t").ok());
  const std::vector<uint8_t> good = FileBytes(&env, "t");

  {
    std::vector<uint8_t> bad = good;
    bad[0] ^= 0xff;  // magic
    PutBytes(&env, "t", bad);
    const Status s = StaticSrTree::Open(&env, "t", false).status();
    EXPECT_TRUE(s.IsCorruption());
    EXPECT_NE(s.ToString().find("offset 0"), std::string::npos);
    EXPECT_TRUE(StaticSrTree::Open(&env, "t", true).status().IsCorruption());
  }
  {
    std::vector<uint8_t> bad(good.begin(), good.begin() + good.size() / 3);
    PutBytes(&env, "t", bad);  // truncation mid-record
    EXPECT_TRUE(StaticSrTree::Open(&env, "t", false).status().IsCorruption());
    EXPECT_TRUE(StaticSrTree::Open(&env, "t", true).status().IsCorruption());
  }
  {
    std::vector<uint8_t> bad = good;
    bad[kFormatHeaderBytes + 9] ^= 0x08;  // node-section payload flip
    PutBytes(&env, "t", bad);
    const Status s = StaticSrTree::Open(&env, "t", false).status();
    EXPECT_TRUE(s.IsCorruption());
    EXPECT_NE(s.ToString().find("crc"), std::string::npos);
    // The O(1) mapped open admits it; the explicit checks catch it.
    auto mapped = StaticSrTree::Open(&env, "t", true);
    ASSERT_TRUE(mapped.ok());
    EXPECT_TRUE(mapped->VerifyCrc().IsCorruption());
  }
  {
    std::vector<uint8_t> garbage(2048);
    for (size_t i = 0; i < garbage.size(); ++i) {
      garbage[i] = static_cast<uint8_t>(i * 131 + 7);
    }
    PutBytes(&env, "t", garbage);
    EXPECT_TRUE(StaticSrTree::Open(&env, "t", false).status().IsCorruption());
  }
  {
    PutBytes(&env, "t", good);
    EXPECT_TRUE(SrTree::LoadStatic(&c, &env, "t").ok());  // fixture intact
    EXPECT_TRUE(
        SrTree::LoadStatic(&c, &env, "missing").status().IsNotFound());
  }
}

TEST(StaticSrTreeTest, StructuralCorruptionIsRejectedAfterCrcFixup) {
  const Collection c = ClusteredCollection(400, 4);
  const SrTree tree = BuildTree(&c);
  MemEnv env;
  ASSERT_TRUE(tree.SaveStatic(&env, "t").ok());
  std::vector<uint8_t> bytes = FileBytes(&env, "t");

  // Point the root's parent link at a bogus node, then recompute the CRC so
  // only the structural validation can object — the fsck layer this test
  // pins down.
  const uint32_t bogus = 7;
  std::memcpy(bytes.data() + kFormatHeaderBytes + 4, &bogus, sizeof(bogus));
  const uint64_t footer_off = bytes.size() - kFormatFooterBytes;
  const uint32_t crc = Crc32(bytes.data(), footer_off);
  std::memcpy(bytes.data() + footer_off, &crc, sizeof(crc));
  PutBytes(&env, "t", bytes);

  const Status s = StaticSrTree::Open(&env, "t", false).status();
  EXPECT_TRUE(s.IsCorruption());
  EXPECT_NE(s.ToString().find("parent"), std::string::npos);
}

}  // namespace
}  // namespace qvt
