// Parity tests of the packed-code ADC kernels (the product-quantization
// first pass): every supported backend must produce bit-identical doubles
// for the table build and the code scan, and the early-abandoning scan may
// only prune rows that provably exceed the threshold.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include "geometry/kernels.h"
#include "geometry/vec.h"
#include "util/random.h"

namespace qvt {
namespace {

using kernels::Backend;

std::vector<Backend> SupportedBackends() {
  std::vector<Backend> backends;
  for (Backend b : {Backend::kScalar, Backend::kSse2, Backend::kAvx2,
                    Backend::kNeon}) {
    if (kernels::BackendSupported(b)) backends.push_back(b);
  }
  return backends;
}

struct BackendGuard {
  explicit BackendGuard(Backend b) { kernels::SetBackendForTesting(b); }
  ~BackendGuard() { kernels::ResetBackendForTesting(); }
};

std::vector<float> RandomFloats(Rng& rng, size_t n, double lo = -50.0,
                                double hi = 100.0) {
  std::vector<float> v(n);
  for (auto& x : v) x = static_cast<float>(rng.UniformDouble(lo, hi));
  return v;
}

std::vector<uint8_t> RandomCodes(Rng& rng, size_t n, size_t ksub) {
  std::vector<uint8_t> codes(n);
  for (auto& c : codes) {
    c = static_cast<uint8_t>(rng.Uniform(static_cast<uint32_t>(ksub)));
  }
  return codes;
}

/// Non-negative random table (squared distances are non-negative; the
/// abandon proof relies on it).
std::vector<double> RandomTable(Rng& rng, size_t n) {
  std::vector<double> table(n);
  for (auto& t : table) t = rng.UniformDouble(0.0, 10.0);
  return table;
}

/// The documented reference: plain ascending-s double accumulation.
std::vector<double> Reference(const uint8_t* codes, size_t count, size_t m,
                              size_t ksub, const double* table) {
  std::vector<double> out(count);
  for (size_t i = 0; i < count; ++i) {
    double acc = 0.0;
    for (size_t s = 0; s < m; ++s) acc += table[s * ksub + codes[i * m + s]];
    out[i] = acc;
  }
  return out;
}

TEST(AdcKernelsTest, TableMatchesPerSubspaceSquaredDistanceBitwise) {
  Rng rng(7);
  for (const size_t m : {size_t{1}, size_t{3}, size_t{8}, size_t{12}}) {
    const size_t dim = 24;
    ASSERT_EQ(dim % m, 0u);
    const size_t sub_dim = dim / m;
    for (const size_t ksub : {size_t{1}, size_t{7}, size_t{256}}) {
      const std::vector<float> codebooks =
          RandomFloats(rng, m * ksub * sub_dim);
      const std::vector<float> query = RandomFloats(rng, dim);
      std::vector<double> expected(m * ksub);
      for (size_t s = 0; s < m; ++s) {
        for (size_t c = 0; c < ksub; ++c) {
          expected[s * ksub + c] = vec::SquaredDistance(
              {codebooks.data() + (s * ksub + c) * sub_dim, sub_dim},
              std::span<const float>(query).subspan(s * sub_dim, sub_dim));
        }
      }
      for (Backend backend : SupportedBackends()) {
        BackendGuard guard(backend);
        std::vector<double> table(m * ksub, -1.0);
        kernels::BuildAdcTable(codebooks.data(), m, ksub, sub_dim, query,
                               table.data());
        for (size_t j = 0; j < table.size(); ++j) {
          ASSERT_EQ(table[j], expected[j])
              << "backend=" << kernels::BackendName(backend) << " m=" << m
              << " ksub=" << ksub << " entry=" << j;
        }
      }
    }
  }
}

TEST(AdcKernelsTest, ScanMatchesReferenceBitwiseAcrossShapes) {
  Rng rng(11);
  for (const size_t m : {size_t{1}, size_t{3}, size_t{8}, size_t{12}}) {
    for (const size_t ksub : {size_t{1}, size_t{5}, size_t{256}}) {
      for (const size_t count :
           {size_t{1}, size_t{2}, size_t{3}, size_t{4}, size_t{7}, size_t{8},
            size_t{9}, size_t{17}, size_t{33}}) {
        const std::vector<double> table = RandomTable(rng, m * ksub);
        const std::vector<uint8_t> codes = RandomCodes(rng, count * m, ksub);
        const std::vector<double> expected =
            Reference(codes.data(), count, m, ksub, table.data());
        for (Backend backend : SupportedBackends()) {
          BackendGuard guard(backend);
          std::vector<double> got(count, -1.0);
          kernels::AdcScan(codes.data(), count, m, ksub, table.data(),
                           got.data());
          for (size_t i = 0; i < count; ++i) {
            ASSERT_EQ(got[i], expected[i])
                << "backend=" << kernels::BackendName(backend) << " m=" << m
                << " ksub=" << ksub << " count=" << count << " row=" << i;
          }
        }
      }
    }
  }
}

TEST(AdcKernelsTest, AbandonKeepsCompletedRowsBitIdenticalAndPrunesSafely) {
  Rng rng(13);
  const size_t ksub = 16;
  for (const size_t m : {size_t{3}, size_t{8}, size_t{12}}) {
    const size_t count = 41;
    const std::vector<double> table = RandomTable(rng, m * ksub);
    const std::vector<uint8_t> codes = RandomCodes(rng, count * m, ksub);
    const std::vector<double> expected =
        Reference(codes.data(), count, m, ksub, table.data());
    // A low threshold so prefix sums cross it well before the last
    // subspace.
    std::vector<double> sorted = expected;
    std::sort(sorted.begin(), sorted.end());
    const double threshold = sorted[count / 8];
    // The scalar backend prunes row i exactly when some prefix sum at a
    // stride boundary b < m strictly exceeds the threshold. Simulate it.
    std::vector<bool> scalar_prunes(count, false);
    size_t expected_pruned = 0;
    for (size_t i = 0; i < count; ++i) {
      double acc = 0.0;
      for (size_t s = 0; s < m && !scalar_prunes[i]; ++s) {
        acc += table[s * ksub + codes[i * m + s]];
        const size_t done = s + 1;
        if (done % 4 == 0 && done < m && acc > threshold) {
          scalar_prunes[i] = true;
          ++expected_pruned;
        }
      }
    }
    // m at or below the stride has no interior boundary, so nothing can
    // prune; above it the seeds guarantee the fixture exercises pruning.
    if (m <= 4) {
      ASSERT_EQ(expected_pruned, 0u) << "m=" << m;
    } else {
      ASSERT_GT(expected_pruned, 0u) << "m=" << m;
      ASSERT_LT(expected_pruned, count) << "m=" << m;
    }
    for (Backend backend : SupportedBackends()) {
      BackendGuard guard(backend);
      std::vector<double> got(count, -1.0);
      kernels::AdcScanAbandon(codes.data(), count, m, ksub, table.data(),
                              threshold, got.data());
      for (size_t i = 0; i < count; ++i) {
        if (got[i] == kernels::kAbandoned) {
          // Monotone non-negative accumulation: a pruned row must truly be
          // over the threshold — no margin, no false prunes.
          ASSERT_GT(expected[i], threshold)
              << "backend=" << kernels::BackendName(backend) << " m=" << m
              << " row=" << i;
        } else {
          ASSERT_EQ(got[i], expected[i])
              << "backend=" << kernels::BackendName(backend) << " m=" << m
              << " row=" << i;
        }
        if (backend == Backend::kScalar) {
          ASSERT_EQ(got[i] == kernels::kAbandoned, bool{scalar_prunes[i]})
              << "scalar prune set mismatch m=" << m << " row=" << i;
        }
      }
    }
  }
}

TEST(AdcKernelsTest, InfiniteThresholdNeverPrunes) {
  Rng rng(17);
  const size_t m = 8, ksub = 32, count = 19;
  const std::vector<double> table = RandomTable(rng, m * ksub);
  const std::vector<uint8_t> codes = RandomCodes(rng, count * m, ksub);
  const std::vector<double> expected =
      Reference(codes.data(), count, m, ksub, table.data());
  for (Backend backend : SupportedBackends()) {
    BackendGuard guard(backend);
    std::vector<double> got(count, -1.0);
    kernels::AdcScanAbandon(codes.data(), count, m, ksub, table.data(),
                            std::numeric_limits<double>::infinity(),
                            got.data());
    for (size_t i = 0; i < count; ++i) ASSERT_EQ(got[i], expected[i]);
  }
}

}  // namespace
}  // namespace qvt
