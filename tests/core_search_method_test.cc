#include "core/search_method.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "cluster/srtree_chunker.h"
#include "core/exact_scan.h"
#include "core/lsh.h"
#include "core/medrank.h"
#include "core/psphere.h"
#include "core/va_file.h"
#include "descriptor/generator.h"
#include "util/logging.h"
#include "util/random.h"

namespace qvt {
namespace {

/// Clustered synthetic data plus a chunk index, so the context can serve
/// every registered method including "chunked".
struct MethodFixture {
  MemEnv env;
  Collection collection;
  std::optional<ChunkIndex> index;

  explicit MethodFixture(uint64_t seed = 17) {
    GeneratorConfig config;
    config.num_images = 30;
    config.descriptors_per_image = 20;
    config.num_modes = 6;
    config.seed = seed;
    collection = GenerateCollection(config);
    SrTreeChunker chunker(80);
    auto chunking = chunker.FormChunks(collection);
    QVT_CHECK(chunking.ok());
    auto built = ChunkIndex::Build(collection, *chunking, &env,
                                   ChunkIndexPaths::ForBase("idx"));
    QVT_CHECK(built.ok());
    index.emplace(std::move(built).value());
  }

  MethodContext Context() const {
    MethodContext context;
    context.collection = &collection;
    context.index = &*index;
    return context;
  }
};

/// A collection engineered for exact-distance ties: `groups` distinct
/// vectors, each stored under `dupes` different descriptor ids. Ids are
/// appended in descending order so any method that merely preserves
/// insertion or scan order fails the ascending-id tie-break assertions.
Collection TieCollection(size_t groups = 12, size_t dupes = 5) {
  Collection collection;
  Rng rng(99);
  DescriptorId next_id = static_cast<DescriptorId>(groups * dupes);
  for (size_t g = 0; g < groups; ++g) {
    std::vector<float> vec(kDescriptorDim);
    for (float& v : vec) v = static_cast<float>(rng.Uniform(1000)) / 10.0f;
    for (size_t d = 0; d < dupes; ++d) {
      collection.Append(--next_id, vec);
    }
  }
  return collection;
}

void ExpectSortedByDistanceThenId(const std::vector<Neighbor>& neighbors) {
  for (size_t i = 1; i < neighbors.size(); ++i) {
    if (neighbors[i].distance == neighbors[i - 1].distance) {
      EXPECT_GT(neighbors[i].id, neighbors[i - 1].id) << "rank " << i;
    } else {
      EXPECT_GT(neighbors[i].distance, neighbors[i - 1].distance)
          << "rank " << i;
    }
  }
}

void ExpectSameNeighbors(const std::vector<Neighbor>& a,
                         const std::vector<Neighbor>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].id, b[i].id) << "rank " << i;
    EXPECT_DOUBLE_EQ(a[i].distance, b[i].distance) << "rank " << i;
  }
}

void ExpectSameCounters(const QueryTelemetry& a, const QueryTelemetry& b) {
  EXPECT_EQ(a.probes, b.probes);
  EXPECT_EQ(a.index_entries_scanned, b.index_entries_scanned);
  EXPECT_EQ(a.candidates_examined, b.candidates_examined);
  EXPECT_EQ(a.descriptors_scanned, b.descriptors_scanned);
  EXPECT_EQ(a.bytes_read, b.bytes_read);
  EXPECT_EQ(a.exact, b.exact);
}

// --- registry ---------------------------------------------------------------

TEST(MethodRegistryTest, ListsAllSevenBuiltins) {
  const MethodRegistry& registry = MethodRegistry::Global();
  for (const char* name : {"chunked", "exact-scan", "lsh", "va-file",
                           "medrank", "psphere", "pq"}) {
    EXPECT_TRUE(registry.Contains(name)) << name;
  }
  const std::vector<MethodInfo> infos = registry.List();
  EXPECT_EQ(infos.size(), 7u);
  for (size_t i = 1; i < infos.size(); ++i) {
    EXPECT_LT(infos[i - 1].name, infos[i].name);  // sorted listing
  }
}

TEST(MethodRegistryTest, UnknownMethodIsNotFound) {
  const MethodFixture fx;
  auto method = MethodRegistry::Global().Create("r-tree", fx.Context());
  ASSERT_FALSE(method.ok());
  EXPECT_TRUE(method.status().IsNotFound());
  // The error names the registered methods, so the typo is self-correcting.
  EXPECT_NE(method.status().message().find("chunked"), std::string::npos);
}

TEST(MethodRegistryTest, UnknownParameterRejected) {
  const MethodFixture fx;
  auto method = MethodRegistry::Global().Create("lsh", fx.Context(),
                                                "num_tables=4,bogus=1");
  ASSERT_FALSE(method.ok());
  EXPECT_TRUE(method.status().IsInvalidArgument());
  EXPECT_NE(method.status().message().find("bogus"), std::string::npos);
}

TEST(MethodRegistryTest, MalformedParameterValueRejected) {
  const MethodFixture fx;
  EXPECT_FALSE(MethodRegistry::Global()
                   .Create("lsh", fx.Context(), "num_tables=abc")
                   .ok());
  EXPECT_FALSE(
      MethodRegistry::Global().Create("lsh", fx.Context(), "num_tables").ok());
}

TEST(MethodRegistryTest, ParameterRangeValidation) {
  const MethodFixture fx;
  const MethodRegistry& registry = MethodRegistry::Global();
  EXPECT_FALSE(registry.Create("lsh", fx.Context(), "num_tables=0").ok());
  EXPECT_FALSE(registry.Create("va-file", fx.Context(), "bits_per_dim=9").ok());
  EXPECT_FALSE(registry.Create("va-file", fx.Context(), "bits_per_dim=0").ok());
  EXPECT_FALSE(
      registry.Create("medrank", fx.Context(), "min_frequency=0").ok());
  EXPECT_FALSE(
      registry.Create("psphere", fx.Context(), "fill_factor=0.5").ok());
}

TEST(MethodRegistryTest, MethodsRequireTheirContext) {
  MethodContext empty;
  EXPECT_FALSE(MethodRegistry::Global().Create("exact-scan", empty).ok());
  EXPECT_FALSE(MethodRegistry::Global().Create("chunked", empty).ok());
}

// --- interface contract -----------------------------------------------------

TEST(SearchMethodTest, SearchBeforePrepareFailsPrecondition) {
  const MethodFixture fx;
  for (const MethodInfo& info : MethodRegistry::Global().List()) {
    auto method = MethodRegistry::Global().Create(info.name, fx.Context());
    ASSERT_TRUE(method.ok()) << info.name;
    auto result = (*method)->Search(fx.collection.Vector(0), 5);
    ASSERT_FALSE(result.ok()) << info.name;
    EXPECT_TRUE(result.status().IsFailedPrecondition()) << info.name;
  }
}

TEST(SearchMethodTest, PrepareIsIdempotent) {
  const MethodFixture fx;
  auto method = MethodRegistry::Global().Create("lsh", fx.Context());
  ASSERT_TRUE(method.ok());
  ASSERT_TRUE((*method)->Prepare().ok());
  auto first = (*method)->Search(fx.collection.Vector(7), 5);
  ASSERT_TRUE((*method)->Prepare().ok());  // second call is a no-op
  auto second = (*method)->Search(fx.collection.Vector(7), 5);
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(second.ok());
  ExpectSameNeighbors(first->neighbors, second->neighbors);
}

// Every registered method can be constructed by name, prepared, and
// queried, and emits the unified result contract: self-query at distance 0,
// neighbors ascending by (distance, id), telemetry populated.
TEST(SearchMethodTest, EveryMethodConstructibleAndSearchable) {
  const MethodFixture fx;
  for (const MethodInfo& info : MethodRegistry::Global().List()) {
    auto method = MethodRegistry::Global().Create(info.name, fx.Context());
    ASSERT_TRUE(method.ok()) << info.name;
    EXPECT_EQ((*method)->name(), info.name);
    EXPECT_FALSE((*method)->Describe().empty()) << info.name;
    ASSERT_TRUE((*method)->Prepare().ok()) << info.name;
    auto result = (*method)->Search(fx.collection.Vector(42), 5);
    ASSERT_TRUE(result.ok()) << info.name;
    ASSERT_FALSE(result->neighbors.empty()) << info.name;
    EXPECT_EQ(result->neighbors.front().id, fx.collection.Id(42))
        << info.name;
    EXPECT_DOUBLE_EQ(result->neighbors.front().distance, 0.0) << info.name;
    ExpectSortedByDistanceThenId(result->neighbors);
    const QueryTelemetry& telemetry = result->telemetry;
    EXPECT_GT(telemetry.descriptors_scanned, 0u) << info.name;
    EXPECT_GT(telemetry.bytes_read, 0u) << info.name;
    EXPECT_GE(telemetry.wall_micros,
              telemetry.plan.wall_micros + telemetry.scan.wall_micros +
                  telemetry.refine.wall_micros)
        << info.name;
    if (!info.capabilities.exact) {
      EXPECT_FALSE(telemetry.exact) << info.name;
    }
  }
}

TEST(SearchMethodTest, MethodsWithoutStopRulesRejectApproximateStops) {
  const MethodFixture fx;
  for (const MethodInfo& info : MethodRegistry::Global().List()) {
    auto method = MethodRegistry::Global().Create(info.name, fx.Context());
    ASSERT_TRUE(method.ok()) << info.name;
    ASSERT_TRUE((*method)->Prepare().ok()) << info.name;
    auto result =
        (*method)->Search(fx.collection.Vector(0), 5, StopRule::MaxChunks(2));
    if (info.capabilities.stop_rules) {
      EXPECT_TRUE(result.ok()) << info.name;
    } else {
      ASSERT_FALSE(result.ok()) << info.name;
      EXPECT_TRUE(result.status().IsInvalidArgument()) << info.name;
    }
  }
}

TEST(SearchMethodTest, RangeSearchMatchesCapabilityFlag) {
  const MethodFixture fx;
  for (const MethodInfo& info : MethodRegistry::Global().List()) {
    auto method = MethodRegistry::Global().Create(info.name, fx.Context());
    ASSERT_TRUE(method.ok()) << info.name;
    ASSERT_TRUE((*method)->Prepare().ok()) << info.name;
    auto result = (*method)->SearchRange(fx.collection.Vector(0), 10.0,
                                         StopRule::Exact());
    if (info.capabilities.range_search) {
      EXPECT_TRUE(result.ok()) << info.name;
    } else {
      ASSERT_FALSE(result.ok()) << info.name;
      EXPECT_TRUE(result.status().IsUnimplemented()) << info.name;
    }
  }
}

// --- bit-identity with the native (pre-unification) call paths --------------

TEST(SearchMethodTest, ExactScanAdapterMatchesFreeFunction) {
  const MethodFixture fx;
  auto method = MethodRegistry::Global().Create("exact-scan", fx.Context());
  ASSERT_TRUE(method.ok());
  ASSERT_TRUE((*method)->Prepare().ok());
  for (size_t pos : {0u, 111u, 599u}) {
    auto unified = (*method)->Search(fx.collection.Vector(pos), 10);
    ASSERT_TRUE(unified.ok());
    const auto direct = ExactScan(fx.collection, fx.collection.Vector(pos), 10);
    ExpectSameNeighbors(unified->neighbors, direct);
    EXPECT_TRUE(unified->telemetry.exact);
  }
}

TEST(SearchMethodTest, LshAdapterMatchesDirectIndex) {
  const MethodFixture fx;
  auto method = MethodRegistry::Global().Create("lsh", fx.Context());
  ASSERT_TRUE(method.ok());
  ASSERT_TRUE((*method)->Prepare().ok());
  const LshIndex direct = LshIndex::Build(&fx.collection, LshConfig{});
  for (size_t pos : {3u, 250u, 417u}) {
    auto unified = (*method)->Search(fx.collection.Vector(pos), 10);
    QueryTelemetry native_telemetry;
    auto native =
        direct.Search(fx.collection.Vector(pos), 10, &native_telemetry);
    ASSERT_TRUE(unified.ok());
    ASSERT_TRUE(native.ok());
    ExpectSameNeighbors(unified->neighbors, *native);
    ExpectSameCounters(unified->telemetry, native_telemetry);
  }
}

TEST(SearchMethodTest, VaFileAdapterMatchesDirectIndex) {
  const MethodFixture fx;
  auto method = MethodRegistry::Global().Create("va-file", fx.Context());
  ASSERT_TRUE(method.ok());
  ASSERT_TRUE((*method)->Prepare().ok());
  const VaFile direct = VaFile::Build(&fx.collection, VaFileConfig{});
  for (size_t pos : {8u, 300u, 590u}) {
    auto unified = (*method)->Search(fx.collection.Vector(pos), 10);
    QueryTelemetry native_telemetry;
    auto native =
        direct.Search(fx.collection.Vector(pos), 10, &native_telemetry);
    ASSERT_TRUE(unified.ok());
    ASSERT_TRUE(native.ok());
    ExpectSameNeighbors(unified->neighbors, *native);
    ExpectSameCounters(unified->telemetry, native_telemetry);
  }
}

TEST(SearchMethodTest, MedrankAdapterMatchesDirectIndexSorted) {
  const MethodFixture fx;
  auto method = MethodRegistry::Global().Create("medrank", fx.Context());
  ASSERT_TRUE(method.ok());
  ASSERT_TRUE((*method)->Prepare().ok());
  const MedrankIndex direct =
      MedrankIndex::Build(&fx.collection, MedrankConfig{});
  for (size_t pos : {5u, 199u, 460u}) {
    auto unified = (*method)->Search(fx.collection.Vector(pos), 10);
    QueryTelemetry native_telemetry;
    auto native =
        direct.Search(fx.collection.Vector(pos), 10, &native_telemetry);
    ASSERT_TRUE(unified.ok());
    ASSERT_TRUE(native.ok());
    // The native call returns emission (rank) order; the unified contract
    // re-sorts into (distance, id) order. Same set, same telemetry.
    std::sort(native->begin(), native->end(),
              [](const Neighbor& a, const Neighbor& b) {
                if (a.distance != b.distance) return a.distance < b.distance;
                return a.id < b.id;
              });
    ExpectSameNeighbors(unified->neighbors, *native);
    ExpectSameCounters(unified->telemetry, native_telemetry);
  }
}

TEST(SearchMethodTest, PSphereAdapterMatchesDirectIndex) {
  const MethodFixture fx;
  auto method = MethodRegistry::Global().Create("psphere", fx.Context());
  ASSERT_TRUE(method.ok());
  ASSERT_TRUE((*method)->Prepare().ok());
  const PSphereTree direct =
      PSphereTree::Build(&fx.collection, PSphereConfig{});
  for (size_t pos : {1u, 333u, 577u}) {
    auto unified = (*method)->Search(fx.collection.Vector(pos), 10);
    QueryTelemetry native_telemetry;
    auto native =
        direct.Search(fx.collection.Vector(pos), 10, &native_telemetry);
    ASSERT_TRUE(unified.ok());
    ASSERT_TRUE(native.ok());
    ExpectSameNeighbors(unified->neighbors, *native);
    ExpectSameCounters(unified->telemetry, native_telemetry);
  }
}

TEST(SearchMethodTest, ChunkedAdapterMatchesDirectSearcher) {
  const MethodFixture fx;
  auto method = MethodRegistry::Global().Create("chunked", fx.Context());
  ASSERT_TRUE(method.ok());
  ASSERT_TRUE((*method)->Prepare().ok());
  const Searcher searcher(&*fx.index, DiskCostModel());
  for (size_t pos : {2u, 77u, 512u}) {
    for (const StopRule& stop :
         {StopRule::Exact(), StopRule::MaxChunks(2)}) {
      auto unified = (*method)->Search(fx.collection.Vector(pos), 10, stop);
      auto native = searcher.Search(fx.collection.Vector(pos), 10, stop);
      ASSERT_TRUE(unified.ok());
      ASSERT_TRUE(native.ok());
      ExpectSameNeighbors(unified->neighbors, native->neighbors);
      EXPECT_EQ(unified->telemetry.chunks_read, native->chunks_read);
      EXPECT_EQ(unified->telemetry.descriptors_scanned,
                native->descriptors_processed);
      EXPECT_EQ(unified->telemetry.model_micros, native->model_elapsed_micros);
      EXPECT_EQ(unified->telemetry.exact, native->exact);
    }
  }
}

// --- tie-break determinism (distance ties resolve by ascending id) ----------

// Each method queried with an exact member of a duplicated-vector group must
// order the zero-distance ties (and every later tie group it reports) by
// ascending descriptor id — the KnnResultSet tie-break — independent of
// insertion order, scan order, or hashing.
TEST(TieBreakTest, AllMethodsOrderDistanceTiesByAscendingId) {
  const Collection ties = TieCollection();
  MethodContext context;
  context.collection = &ties;
  for (const char* name : {"exact-scan", "lsh", "va-file", "medrank",
                           "psphere"}) {
    auto method = MethodRegistry::Global().Create(name, context);
    ASSERT_TRUE(method.ok()) << name;
    ASSERT_TRUE((*method)->Prepare().ok()) << name;
    auto result = (*method)->Search(ties.Vector(0), 10);
    ASSERT_TRUE(result.ok()) << name;
    ASSERT_FALSE(result->neighbors.empty()) << name;
    ExpectSortedByDistanceThenId(result->neighbors);
  }
}

// For methods that always recall the full duplicate group, the group's ids
// must come back exactly, in ascending order — the same answer an exact
// scan pins.
TEST(TieBreakTest, ExactMethodsReturnFullTieGroupInIdOrder) {
  const size_t dupes = 5;
  const Collection ties = TieCollection(/*groups=*/12, dupes);
  MethodContext context;
  context.collection = &ties;
  const auto truth = ExactScan(ties, ties.Vector(0), dupes);
  ASSERT_EQ(truth.size(), dupes);
  for (size_t i = 0; i < dupes; ++i) {
    EXPECT_DOUBLE_EQ(truth[i].distance, 0.0) << "rank " << i;
    if (i > 0) {
      EXPECT_GT(truth[i].id, truth[i - 1].id) << "rank " << i;
    }
  }
  // The VA-file is exact, and a P-Sphere tree with few spheres and a high
  // fill factor stores every vector in each sphere — both must reproduce
  // the scan's tie order exactly.
  for (const auto& [name, params] :
       {std::pair<const char*, const char*>{"va-file", ""},
        {"psphere", "num_spheres=4,fill_factor=4"}}) {
    auto method = MethodRegistry::Global().Create(name, context, params);
    ASSERT_TRUE(method.ok()) << name;
    ASSERT_TRUE((*method)->Prepare().ok()) << name;
    auto result = (*method)->Search(ties.Vector(0), dupes);
    ASSERT_TRUE(result.ok()) << name;
    ExpectSameNeighbors(result->neighbors, truth);
  }
}

// Two independently built instances of the same seeded method must agree on
// tie-laden data — randomized structures (hash tables, projection lines,
// sphere samples) are deterministic in their seeds.
TEST(TieBreakTest, RebuiltInstancesAgreeOnTies) {
  const Collection ties = TieCollection();
  MethodContext context;
  context.collection = &ties;
  for (const char* name : {"lsh", "va-file", "medrank", "psphere"}) {
    auto first = MethodRegistry::Global().Create(name, context);
    auto second = MethodRegistry::Global().Create(name, context);
    ASSERT_TRUE(first.ok()) << name;
    ASSERT_TRUE(second.ok()) << name;
    ASSERT_TRUE((*first)->Prepare().ok()) << name;
    ASSERT_TRUE((*second)->Prepare().ok()) << name;
    for (size_t pos : {0u, 17u, 43u}) {
      auto ra = (*first)->Search(ties.Vector(pos), 8);
      auto rb = (*second)->Search(ties.Vector(pos), 8);
      ASSERT_TRUE(ra.ok()) << name;
      ASSERT_TRUE(rb.ok()) << name;
      ExpectSameNeighbors(ra->neighbors, rb->neighbors);
    }
  }
}


TEST(MethodRegistryTest, RegisterRejectsEmptyNameNullFactoryAndDuplicates) {
  MethodRegistry registry;
  MethodInfo info;
  info.name = "probe";
  auto factory = [](const MethodContext&, MethodOptions&)
      -> StatusOr<std::unique_ptr<SearchMethod>> {
    return Status::Unimplemented("probe");
  };

  MethodInfo nameless = info;
  nameless.name.clear();
  EXPECT_TRUE(registry.Register(nameless, factory).IsInvalidArgument());
  EXPECT_TRUE(registry.Register(info, nullptr).IsInvalidArgument());

  ASSERT_TRUE(registry.Register(info, factory).ok());
  // A duplicate never overwrites the existing entry.
  const Status dup = registry.Register(info, factory);
  EXPECT_TRUE(dup.IsAlreadyExists());
  EXPECT_NE(dup.ToString().find("probe"), std::string::npos);
  EXPECT_TRUE(registry.Contains("probe"));
}

TEST(MethodRegistryTest, EmptyNameLookupsFailCleanly) {
  MethodContext context;
  EXPECT_TRUE(
      MethodRegistry::Global().Create("", context).status().IsInvalidArgument());
  EXPECT_TRUE(MethodRegistry::Global().Info("").status().IsNotFound() ||
              MethodRegistry::Global().Info("").status().IsInvalidArgument());
  ShardBuildContext shard_context;
  EXPECT_FALSE(MethodRegistry::Global().BuildShard("", shard_context).ok());
}

TEST(MethodRegistryTest, InfoReturnsCapabilitiesAndListsOnMiss) {
  auto info = MethodRegistry::Global().Info("exact-scan");
  ASSERT_TRUE(info.ok());
  EXPECT_TRUE(info->capabilities.exact);
  const Status miss = MethodRegistry::Global().Info("nope").status();
  EXPECT_TRUE(miss.IsNotFound());
  // The error names the registered methods, so typos are self-diagnosing.
  EXPECT_NE(miss.ToString().find("chunked"), std::string::npos);
}

TEST(SearchMethodTest, ResidentBytesReportedPerMethod) {
  MethodFixture fixture;
  MethodContext context = fixture.Context();
  // Exact scan keeps no auxiliary structures (the virtual default).
  auto exact = MethodRegistry::Global().Create("exact-scan", context);
  ASSERT_TRUE(exact.ok());
  ASSERT_TRUE((*exact)->Prepare().ok());
  EXPECT_EQ((*exact)->ResidentBytes(), 0u);
  // Index-carrying methods report a positive footprint once prepared.
  for (const char* name : {"chunked", "lsh", "va-file", "medrank", "psphere"}) {
    auto method = MethodRegistry::Global().Create(name, context);
    ASSERT_TRUE(method.ok()) << name;
    ASSERT_TRUE((*method)->Prepare().ok()) << name;
    EXPECT_GT((*method)->ResidentBytes(), 0u) << name;
  }
}

TEST(ShardBuildTest, GenericPathBuildsAnyMethodOverASubset) {
  MethodFixture fixture;
  ShardBuildContext context;
  context.data = std::make_shared<Collection>(fixture.collection);
  context.env = &fixture.env;
  context.artifact_base = "shard-generic";
  for (const char* name : {"exact-scan", "lsh", "va-file", "medrank"}) {
    auto shard = MethodRegistry::Global().BuildShard(name, context);
    ASSERT_TRUE(shard.ok()) << name << ": " << shard.status().ToString();
    EXPECT_EQ(shard->data.get(), context.data.get()) << name;
    auto result =
        shard->method->Search(fixture.collection.Vector(0), 3);
    ASSERT_TRUE(result.ok()) << name;
    EXPECT_EQ(result->neighbors[0].id, fixture.collection.Id(0)) << name;
  }
  // Null data is rejected before any factory runs.
  ShardBuildContext empty;
  empty.env = &fixture.env;
  EXPECT_TRUE(MethodRegistry::Global()
                  .BuildShard("exact-scan", empty)
                  .status()
                  .IsInvalidArgument());
}

TEST(ShardBuildTest, ChunkedShardBuildsAndReopensArtifacts) {
  MethodFixture fixture;
  ShardBuildContext context;
  context.data = std::make_shared<Collection>(fixture.collection);
  context.env = &fixture.env;
  context.artifact_base = "shard-chunked";
  context.target_chunk_size = 50;
  auto built = MethodRegistry::Global().BuildShard("chunked", context);
  ASSERT_TRUE(built.ok()) << built.status().ToString();
  ASSERT_NE(built->index, nullptr);
  EXPECT_EQ(built->index->total_descriptors(), fixture.collection.size());
  auto first = built->method->Search(fixture.collection.Vector(5), 4);
  ASSERT_TRUE(first.ok());

  // Reopen from the artifacts the build wrote; answers are identical.
  context.reuse_artifacts = true;
  auto reopened = MethodRegistry::Global().BuildShard("chunked", context);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  auto second = reopened->method->Search(fixture.collection.Vector(5), 4);
  ASSERT_TRUE(second.ok());
  ExpectSameNeighbors(first->neighbors, second->neighbors);
}


}  // namespace
}  // namespace qvt
