#include "geometry/kernels.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "geometry/vec.h"
#include "util/random.h"

namespace qvt {
namespace {

using kernels::Backend;

std::vector<Backend> SupportedBackends() {
  std::vector<Backend> backends;
  for (Backend b : {Backend::kScalar, Backend::kSse2, Backend::kAvx2,
                    Backend::kNeon}) {
    if (kernels::BackendSupported(b)) backends.push_back(b);
  }
  return backends;
}

/// Restores auto-dispatch when a test scope ends.
struct BackendGuard {
  explicit BackendGuard(Backend b) { kernels::SetBackendForTesting(b); }
  ~BackendGuard() { kernels::ResetBackendForTesting(); }
};

std::vector<float> RandomFloats(Rng& rng, size_t n, double lo = -50.0,
                                double hi = 100.0) {
  std::vector<float> v(n);
  for (auto& x : v) x = static_cast<float>(rng.UniformDouble(lo, hi));
  return v;
}

/// The documented reference: vec::SquaredDistance per row.
std::vector<double> Reference(const float* base, size_t count, size_t dim,
                              std::span<const float> query) {
  std::vector<double> out(count);
  for (size_t i = 0; i < count; ++i) {
    out[i] = vec::SquaredDistance({base + i * dim, dim}, query);
  }
  return out;
}

TEST(KernelsTest, BackendPlumbing) {
  EXPECT_TRUE(kernels::BackendSupported(Backend::kScalar));
  EXPECT_STREQ(kernels::BackendName(Backend::kScalar), "scalar");
  EXPECT_STREQ(kernels::BackendName(Backend::kAvx2), "avx2");
  EXPECT_TRUE(kernels::BackendSupported(kernels::ActiveBackend()));
  {
    BackendGuard guard(Backend::kScalar);
    EXPECT_EQ(kernels::ActiveBackend(), Backend::kScalar);
  }
  EXPECT_TRUE(kernels::BackendSupported(kernels::ActiveBackend()));
}

TEST(KernelsTest, MatchesScalarReferenceBitwiseAcrossDims) {
  Rng rng(42);
  for (Backend backend : SupportedBackends()) {
    BackendGuard guard(backend);
    for (size_t dim = 1; dim <= 64; ++dim) {
      for (size_t count : {size_t{1}, size_t{2}, size_t{3}, size_t{4},
                           size_t{7}, size_t{17}}) {
        const std::vector<float> base = RandomFloats(rng, count * dim);
        const std::vector<float> query = RandomFloats(rng, dim);
        const std::vector<double> expected =
            Reference(base.data(), count, dim, query);
        std::vector<double> got(count, -1.0);
        kernels::BatchSquaredDistance(base.data(), count, dim, query,
                                      got.data());
        for (size_t i = 0; i < count; ++i) {
          ASSERT_EQ(got[i], expected[i])
              << "backend=" << kernels::BackendName(backend)
              << " dim=" << dim << " count=" << count << " row=" << i;
        }
      }
    }
  }
}

TEST(KernelsTest, Dim24FastPathMatchesReference) {
  Rng rng(7);
  const size_t dim = 24;
  const size_t count = 1000;  // odd-tail block coverage via count % 4 != 0
  for (Backend backend : SupportedBackends()) {
    BackendGuard guard(backend);
    for (size_t c : {count, count + 1, count + 2, count + 3}) {
      const std::vector<float> base = RandomFloats(rng, c * dim);
      const std::vector<float> query = RandomFloats(rng, dim);
      const std::vector<double> expected =
          Reference(base.data(), c, dim, query);
      std::vector<double> got(c);
      kernels::BatchSquaredDistance(base.data(), c, dim, query, got.data());
      for (size_t i = 0; i < c; ++i) {
        ASSERT_EQ(got[i], expected[i])
            << kernels::BackendName(backend) << " row " << i;
      }
    }
  }
}

TEST(KernelsTest, DoubleQueryOverloadMatchesWidenedFloatQuery) {
  Rng rng(11);
  const size_t dim = 24, count = 33;
  const std::vector<float> base = RandomFloats(rng, count * dim);
  const std::vector<float> query = RandomFloats(rng, dim);
  std::vector<double> query_d(query.begin(), query.end());
  for (Backend backend : SupportedBackends()) {
    BackendGuard guard(backend);
    std::vector<double> from_f(count), from_d(count);
    kernels::BatchSquaredDistance(base.data(), count, dim, query,
                                  from_f.data());
    kernels::BatchSquaredDistance(base.data(), count, dim,
                                  std::span<const double>(query_d),
                                  from_d.data());
    EXPECT_EQ(from_f, from_d) << kernels::BackendName(backend);
  }
}

TEST(KernelsTest, UnalignedBaseAndRows) {
  Rng rng(13);
  // Odd dim at an offset-by-one base: every row is 4-byte aligned at best.
  const size_t dim = 23, count = 9;
  const std::vector<float> storage = RandomFloats(rng, count * dim + 1);
  const float* base = storage.data() + 1;
  const std::vector<float> query = RandomFloats(rng, dim);
  const std::vector<double> expected = Reference(base, count, dim, query);
  for (Backend backend : SupportedBackends()) {
    BackendGuard guard(backend);
    std::vector<double> got(count);
    kernels::BatchSquaredDistance(base, count, dim, query, got.data());
    EXPECT_EQ(got, expected) << kernels::BackendName(backend);
  }
}

TEST(KernelsTest, EmptyInputs) {
  const std::vector<float> query(24, 1.0f);
  for (Backend backend : SupportedBackends()) {
    BackendGuard guard(backend);
    // count == 0: no writes, no crashes.
    kernels::BatchSquaredDistance(nullptr, 0, 24, query, nullptr);
    kernels::GatherSquaredDistance(nullptr, 24, {}, std::vector<double>(24),
                                   nullptr);
    // dim == 0: all-zero distances.
    const float base[4] = {1, 2, 3, 4};
    double out[4] = {-1, -1, -1, -1};
    kernels::BatchSquaredDistance(base, 4, 0, std::span<const float>(),
                                  out);
    for (double v : out) EXPECT_EQ(v, 0.0);
  }
}

TEST(KernelsTest, AbandonKeepsExactValuesAndPrunesOnlyProvablyFar) {
  Rng rng(17);
  for (Backend backend : SupportedBackends()) {
    BackendGuard guard(backend);
    for (size_t dim : {size_t{8}, size_t{24}, size_t{37}}) {
      const size_t count = 257;
      // Near rows (first half) sit with the query in [0, 1]^dim; far rows
      // are offset so their partial sums cross the threshold within the
      // first few dimensions.
      std::vector<float> base = RandomFloats(rng, count * dim, 0.0, 1.0);
      for (size_t i = count / 2 * dim; i < count * dim; ++i) {
        base[i] += 100.0f;
      }
      const std::vector<float> query = RandomFloats(rng, dim, 0.0, 1.0);
      const std::vector<double> exact =
          Reference(base.data(), count, dim, query);
      const double threshold =
          *std::max_element(exact.begin(), exact.begin() + count / 2);
      std::vector<double> got(count);
      kernels::BatchSquaredDistanceAbandon(base.data(), count, dim, query,
                                           threshold, got.data());
      size_t abandoned = 0;
      for (size_t i = 0; i < count; ++i) {
        if (got[i] == kernels::kAbandoned) {
          // Abandoning is only legal when the true value exceeds the
          // threshold.
          EXPECT_GT(exact[i], threshold) << i;
          ++abandoned;
        } else {
          EXPECT_EQ(got[i], exact[i])
              << kernels::BackendName(backend) << " dim=" << dim << " " << i;
        }
      }
      // Abandon checks happen at stride boundaries before the last
      // dimension, so any dim beyond one stride must prune the far rows.
      if (dim > 8) {
        EXPECT_GT(abandoned, 0u)
            << kernels::BackendName(backend) << " dim=" << dim;
      }
      // +inf threshold never abandons and is bit-identical throughout.
      kernels::BatchSquaredDistanceAbandon(
          base.data(), count, dim, query,
          std::numeric_limits<double>::infinity(), got.data());
      EXPECT_EQ(got, exact);
    }
  }
}

TEST(KernelsTest, GatherMatchesScalarReference) {
  Rng rng(19);
  const size_t dim = 24, rows = 100;
  const std::vector<float> base = RandomFloats(rng, rows * dim);
  const std::vector<float> query_f = RandomFloats(rng, dim);
  const std::vector<double> query(query_f.begin(), query_f.end());
  std::vector<uint32_t> positions;
  for (size_t i = 0; i < 31; ++i) {
    positions.push_back(rng.Uniform(static_cast<uint32_t>(rows)));
  }
  std::vector<double> expected(positions.size());
  for (size_t i = 0; i < positions.size(); ++i) {
    expected[i] = vec::SquaredDistance(
        {base.data() + positions[i] * dim, dim}, query_f);
  }
  for (Backend backend : SupportedBackends()) {
    BackendGuard guard(backend);
    std::vector<double> got(positions.size());
    kernels::GatherSquaredDistance(base.data(), dim, positions, query,
                                   got.data());
    EXPECT_EQ(got, expected) << kernels::BackendName(backend);
  }
}

TEST(KernelsTest, ScaledRowsMatchesScalarLoop) {
  Rng rng(23);
  const size_t dim = 24, count = 13;
  std::vector<std::vector<double>> storage(count,
                                           std::vector<double>(dim));
  std::vector<const double*> rows(count);
  std::vector<double> scales(count);
  for (size_t i = 0; i < count; ++i) {
    for (auto& x : storage[i]) x = rng.UniformDouble(-10.0, 10.0);
    rows[i] = storage[i].data();
    scales[i] = 1.0 / static_cast<double>(1 + rng.Uniform(40));
  }
  std::vector<double> query(dim);
  for (auto& x : query) x = rng.UniformDouble(-10.0, 10.0);

  // Reference: the pre-kernel BIRCH CF loop.
  std::vector<double> expected(count);
  for (size_t i = 0; i < count; ++i) {
    double acc = 0.0;
    for (size_t d = 0; d < dim; ++d) {
      const double x = storage[i][d] * scales[i] - query[d];
      acc += x * x;
    }
    expected[i] = acc;
  }
  for (Backend backend : SupportedBackends()) {
    BackendGuard guard(backend);
    std::vector<double> got(count);
    kernels::ScaledRowsSquaredDistance(rows.data(), scales.data(), count,
                                       dim, query, got.data());
    EXPECT_EQ(got, expected) << kernels::BackendName(backend);
  }
}

TEST(KernelsTest, AbandonThresholdIsConservative) {
  EXPECT_EQ(kernels::AbandonThreshold(
                std::numeric_limits<double>::infinity()),
            std::numeric_limits<double>::infinity());
  EXPECT_EQ(kernels::AbandonThreshold(0.0), 0.0);
  // The threshold must sit strictly above the rounded square so an exact
  // tie in distance space can never be pruned.
  for (double d : {1.0, 3.25, 1e-3, 123456.75}) {
    const double t = kernels::AbandonThreshold(d);
    EXPECT_GT(t, d * d);
    // ...but within a sliver of it, so pruning power is not lost.
    EXPECT_LT(t, d * d * (1.0 + 1e-9));
  }
}

}  // namespace
}  // namespace qvt
