#include "cluster/chunker.h"

#include <gtest/gtest.h>

#include "cluster/round_robin.h"
#include "cluster/srtree_chunker.h"
#include "descriptor/generator.h"
#include "geometry/sphere.h"

namespace qvt {
namespace {

Collection TestCollection(size_t images = 30) {
  GeneratorConfig config;
  config.num_images = images;
  config.descriptors_per_image = 30;
  config.num_modes = 6;
  config.seed = 3;
  return GenerateCollection(config);
}

TEST(ValidateChunkingTest, AcceptsProperPartition) {
  ChunkingResult result;
  result.chunks = {{0, 2}, {3}};
  result.outliers = {1};
  EXPECT_TRUE(ValidateChunking(result, 4).ok());
}

TEST(ValidateChunkingTest, RejectsDuplicates) {
  ChunkingResult result;
  result.chunks = {{0, 1}, {1}};
  EXPECT_TRUE(ValidateChunking(result, 2).IsCorruption());
}

TEST(ValidateChunkingTest, RejectsMissingPositions) {
  ChunkingResult result;
  result.chunks = {{0}};
  EXPECT_TRUE(ValidateChunking(result, 2).IsCorruption());
}

TEST(ValidateChunkingTest, RejectsOutOfRange) {
  ChunkingResult result;
  result.chunks = {{0, 5}};
  EXPECT_TRUE(ValidateChunking(result, 2).IsCorruption());
}

TEST(ValidateChunkingTest, RejectsEmptyChunks) {
  ChunkingResult result;
  result.chunks = {{0}, {}};
  result.outliers = {1};
  EXPECT_TRUE(ValidateChunking(result, 2).IsCorruption());
}

TEST(ChunkingResultTest, Accounting) {
  ChunkingResult result;
  result.chunks = {{0, 1, 2}, {3, 4}};
  result.outliers = {5};
  EXPECT_EQ(result.TotalChunkedDescriptors(), 5u);

  const PopulationStats stats = result.Populations();
  EXPECT_EQ(stats.num_chunks, 2u);
  EXPECT_EQ(stats.total, 5u);
  EXPECT_EQ(stats.min, 2u);
  EXPECT_EQ(stats.max, 3u);
  EXPECT_DOUBLE_EQ(stats.mean, 2.5);
  EXPECT_DOUBLE_EQ(stats.p50, 2.5);  // interpolated between the two sizes
  EXPECT_DOUBLE_EQ(stats.imbalance, 3.0 / 2.5);

  const PopulationStats empty = ChunkingResult{}.Populations();
  EXPECT_EQ(empty.num_chunks, 0u);
  EXPECT_DOUBLE_EQ(empty.mean, 0.0);
  EXPECT_DOUBLE_EQ(empty.imbalance, 0.0);
}

TEST(ChunkingResultTest, UniformChunksHaveUnitImbalance) {
  ChunkingResult result;
  result.chunks = {{0, 1}, {2, 3}, {4, 5}};
  const PopulationStats stats = result.Populations();
  EXPECT_DOUBLE_EQ(stats.imbalance, 1.0);
  EXPECT_EQ(stats.min, stats.max);
  EXPECT_FALSE(stats.ToString().empty());
}

TEST(RoundRobinChunkerTest, UniformSizesAndValidPartition) {
  const Collection c = TestCollection();
  RoundRobinChunker chunker(100);
  auto result = chunker.FormChunks(c);
  ASSERT_TRUE(result.ok());
  ASSERT_TRUE(ValidateChunking(*result, c.size()).ok());
  EXPECT_TRUE(result->outliers.empty());

  size_t min = SIZE_MAX, max = 0;
  for (const auto& chunk : result->chunks) {
    min = std::min(min, chunk.size());
    max = std::max(max, chunk.size());
  }
  EXPECT_LE(max - min, 1u);  // perfectly uniform up to remainder
  EXPECT_EQ(result->chunks.size(), (c.size() + 99) / 100);
}

TEST(RoundRobinChunkerTest, RejectsEmptyCollection) {
  Collection empty;
  RoundRobinChunker chunker(10);
  EXPECT_TRUE(chunker.FormChunks(empty).status().IsInvalidArgument());
}

TEST(SrTreeChunkerTest, ProducesValidUniformChunks) {
  const Collection c = TestCollection(60);
  SrTreeChunker chunker(120);
  auto result = chunker.FormChunks(c);
  ASSERT_TRUE(result.ok());
  ASSERT_TRUE(ValidateChunking(*result, c.size()).ok());
  EXPECT_TRUE(result->outliers.empty());
  EXPECT_EQ(chunker.name(), "SR");

  size_t min = SIZE_MAX, max = 0;
  for (const auto& chunk : result->chunks) {
    min = std::min(min, chunk.size());
    max = std::max(max, chunk.size());
  }
  EXPECT_LE(max, 120u);
  EXPECT_GE(min, 55u);  // > capacity/2
}

TEST(SrTreeChunkerTest, ChunksAreSpatiallyCoherent) {
  // SR chunks should have much lower intra-chunk spread than round-robin
  // chunks of the same size.
  const Collection c = TestCollection(60);
  SrTreeChunker sr(100);
  RoundRobinChunker rr(100);
  auto sr_result = sr.FormChunks(c);
  auto rr_result = rr.FormChunks(c);
  ASSERT_TRUE(sr_result.ok());
  ASSERT_TRUE(rr_result.ok());

  auto mean_radius = [&](const ChunkingResult& chunking) {
    double total = 0;
    for (const auto& chunk : chunking.chunks) {
      std::vector<std::span<const float>> points;
      for (size_t pos : chunk) points.push_back(c.Vector(pos));
      total += CentroidBoundingSphere(points, c.dim()).radius;
    }
    return total / static_cast<double>(chunking.chunks.size());
  };
  EXPECT_LT(mean_radius(*sr_result), 0.8 * mean_radius(*rr_result));
}

}  // namespace
}  // namespace qvt
