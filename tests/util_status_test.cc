#include "util/status.h"

#include <gtest/gtest.h>

#include "util/statusor.h"

namespace qvt {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::IoError("disk on fire");
  EXPECT_FALSE(s.ok());
  EXPECT_TRUE(s.IsIoError());
  EXPECT_EQ(s.message(), "disk on fire");
  EXPECT_EQ(s.ToString(), "IoError: disk on fire");
}

TEST(StatusTest, FactoryFunctionsSetMatchingPredicates) {
  EXPECT_TRUE(Status::InvalidArgument("x").IsInvalidArgument());
  EXPECT_TRUE(Status::NotFound("x").IsNotFound());
  EXPECT_TRUE(Status::Corruption("x").IsCorruption());
  EXPECT_TRUE(Status::OutOfRange("x").IsOutOfRange());
  EXPECT_TRUE(Status::FailedPrecondition("x").IsFailedPrecondition());
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::OK(), Status());
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("a"));
  EXPECT_FALSE(Status::NotFound("a") == Status::NotFound("b"));
  EXPECT_FALSE(Status::NotFound("a") == Status::IoError("a"));
}

TEST(StatusTest, CodeNamesAreStable) {
  EXPECT_STREQ(StatusCodeToString(StatusCode::kOk), "OK");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kCorruption), "Corruption");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kUnimplemented),
               "Unimplemented");
}

Status FailsWhenNegative(int x) {
  if (x < 0) return Status::InvalidArgument("negative");
  return Status::OK();
}

Status UsesReturnIfError(int x) {
  QVT_RETURN_IF_ERROR(FailsWhenNegative(x));
  return Status::OK();
}

TEST(StatusTest, ReturnIfErrorPropagates) {
  EXPECT_TRUE(UsesReturnIfError(1).ok());
  EXPECT_TRUE(UsesReturnIfError(-1).IsInvalidArgument());
}

TEST(StatusOrTest, HoldsValue) {
  StatusOr<int> v = 42;
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, 42);
  EXPECT_EQ(v.value(), 42);
  EXPECT_EQ(v.value_or(7), 42);
}

TEST(StatusOrTest, HoldsError) {
  StatusOr<int> v = Status::NotFound("nope");
  ASSERT_FALSE(v.ok());
  EXPECT_TRUE(v.status().IsNotFound());
  EXPECT_EQ(v.value_or(7), 7);
}

TEST(StatusOrTest, MoveOnlyValue) {
  StatusOr<std::unique_ptr<int>> v = std::make_unique<int>(5);
  ASSERT_TRUE(v.ok());
  std::unique_ptr<int> owned = std::move(v).value();
  EXPECT_EQ(*owned, 5);
}

StatusOr<int> ParsePositive(int x) {
  if (x <= 0) return Status::InvalidArgument("not positive");
  return x;
}

StatusOr<int> DoubleIt(int x) {
  QVT_ASSIGN_OR_RETURN(int v, ParsePositive(x));
  return v * 2;
}

TEST(StatusOrTest, AssignOrReturnMacro) {
  auto ok = DoubleIt(21);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(*ok, 42);
  EXPECT_TRUE(DoubleIt(-1).status().IsInvalidArgument());
}

}  // namespace
}  // namespace qvt
