// Satellite of the versioned on-disk format: every registered search method
// must return byte-identical neighbors AND identical telemetry counters
// whether its index was opened zero-copy (mmap) or through the
// deserializing path — concurrently, via BatchSearcher, so a TSan build
// also proves the shared mapped view is race-free across worker threads.

#include <cstring>
#include <optional>
#include <vector>

#include <gtest/gtest.h>

#include "cluster/srtree_chunker.h"
#include "core/batch_searcher.h"
#include "core/chunk_index.h"
#include "core/search_method.h"
#include "descriptor/generator.h"
#include "descriptor/workload.h"
#include "util/logging.h"
#include "util/random.h"

namespace qvt {
namespace {

struct OpenModeFixture {
  MemEnv env;
  Collection collection;
  std::optional<ChunkIndex> mapped;
  std::optional<ChunkIndex> deserialized;
  Workload workload;

  OpenModeFixture() {
    GeneratorConfig config;
    config.num_images = 40;
    config.descriptors_per_image = 25;
    config.num_modes = 8;
    config.seed = 29;
    collection = GenerateCollection(config);
    SrTreeChunker chunker(90);
    auto chunking = chunker.FormChunks(collection);
    QVT_CHECK(chunking.ok());
    const ChunkIndexPaths paths = ChunkIndexPaths::ForBase("idx");
    QVT_CHECK(ChunkIndex::Build(collection, *chunking, &env, paths).ok());

    auto via_map =
        ChunkIndex::Open(&env, paths, kDescriptorDim, IndexOpenMode::kMmap);
    QVT_CHECK(via_map.ok());
    mapped.emplace(std::move(via_map).value());
    auto via_copy = ChunkIndex::Open(&env, paths, kDescriptorDim,
                                     IndexOpenMode::kDeserialize);
    QVT_CHECK(via_copy.ok());
    deserialized.emplace(std::move(via_copy).value());

    Rng rng(31);
    workload = MakeDatasetQueries(collection, 24, &rng);
  }

  MethodContext Context(const ChunkIndex* index) const {
    MethodContext context;
    context.collection = &collection;
    context.index = index;
    return context;
  }
};

void ExpectIdenticalBatches(const BatchSearchResult& a,
                            const BatchSearchResult& b,
                            const std::string& label) {
  ASSERT_EQ(a.results.size(), b.results.size()) << label;
  for (size_t q = 0; q < a.results.size(); ++q) {
    const MethodResult& ra = a.results[q];
    const MethodResult& rb = b.results[q];
    ASSERT_EQ(ra.neighbors.size(), rb.neighbors.size())
        << label << " query " << q;
    for (size_t i = 0; i < ra.neighbors.size(); ++i) {
      EXPECT_EQ(ra.neighbors[i].id, rb.neighbors[i].id)
          << label << " query " << q << " rank " << i;
      // Bitwise, not approximate: both opens read the same stored floats.
      EXPECT_EQ(std::memcmp(&ra.neighbors[i].distance,
                            &rb.neighbors[i].distance, sizeof(double)),
                0)
          << label << " query " << q << " rank " << i;
    }
    const QueryTelemetry& ta = ra.telemetry;
    const QueryTelemetry& tb = rb.telemetry;
    EXPECT_EQ(ta.probes, tb.probes) << label << " query " << q;
    EXPECT_EQ(ta.index_entries_scanned, tb.index_entries_scanned)
        << label << " query " << q;
    EXPECT_EQ(ta.candidates_examined, tb.candidates_examined)
        << label << " query " << q;
    EXPECT_EQ(ta.descriptors_scanned, tb.descriptors_scanned)
        << label << " query " << q;
    EXPECT_EQ(ta.bytes_read, tb.bytes_read) << label << " query " << q;
    EXPECT_EQ(ta.chunks_read, tb.chunks_read) << label << " query " << q;
    EXPECT_EQ(ta.exact, tb.exact) << label << " query " << q;
  }
}

TEST(OpenModeIdentityTest, AllMethodsIdenticalAcrossOpenModesConcurrently) {
  const OpenModeFixture fx;
  ASSERT_TRUE(fx.mapped->mapped());
  ASSERT_FALSE(fx.deserialized->mapped());

  for (const MethodInfo& info : MethodRegistry::Global().List()) {
    SCOPED_TRACE(info.name);
    auto method_mapped =
        MethodRegistry::Global().Create(info.name, fx.Context(&*fx.mapped));
    ASSERT_TRUE(method_mapped.ok());
    ASSERT_TRUE((*method_mapped)->Prepare().ok());
    auto method_copy = MethodRegistry::Global().Create(
        info.name, fx.Context(&*fx.deserialized));
    ASSERT_TRUE(method_copy.ok());
    ASSERT_TRUE((*method_copy)->Prepare().ok());

    // 4 worker threads hammer the shared (mapped) view concurrently.
    BatchSearcher batch_mapped(method_mapped->get(), 4);
    BatchSearcher batch_copy(method_copy->get(), 4);
    auto a = batch_mapped.SearchAll(fx.workload, 10, StopRule::Exact());
    ASSERT_TRUE(a.ok());
    auto b = batch_copy.SearchAll(fx.workload, 10, StopRule::Exact());
    ASSERT_TRUE(b.ok());
    ExpectIdenticalBatches(*a, *b, info.name);
  }
}

// The chunked method under an approximate budget touches the radius and
// location columns on the pruning path — cover that too.
TEST(OpenModeIdentityTest, ChunkedBudgetedSearchIdenticalAcrossOpenModes) {
  const OpenModeFixture fx;
  auto method_mapped =
      MethodRegistry::Global().Create("chunked", fx.Context(&*fx.mapped));
  ASSERT_TRUE(method_mapped.ok());
  ASSERT_TRUE((*method_mapped)->Prepare().ok());
  auto method_copy =
      MethodRegistry::Global().Create("chunked", fx.Context(&*fx.deserialized));
  ASSERT_TRUE(method_copy.ok());
  ASSERT_TRUE((*method_copy)->Prepare().ok());

  BatchSearcher batch_mapped(method_mapped->get(), 4);
  BatchSearcher batch_copy(method_copy->get(), 4);
  auto a = batch_mapped.SearchAll(fx.workload, 10, StopRule::MaxChunks(2));
  ASSERT_TRUE(a.ok());
  auto b = batch_copy.SearchAll(fx.workload, 10, StopRule::MaxChunks(2));
  ASSERT_TRUE(b.ok());
  ExpectIdenticalBatches(*a, *b, "chunked budget 2");
}

}  // namespace
}  // namespace qvt
