# Empty compiler generated dependencies file for qvt_bench_util.
# This may be replaced when dependencies are built.
