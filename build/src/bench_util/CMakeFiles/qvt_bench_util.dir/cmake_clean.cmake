file(REMOVE_RECURSE
  "CMakeFiles/qvt_bench_util.dir/experiment_config.cc.o"
  "CMakeFiles/qvt_bench_util.dir/experiment_config.cc.o.d"
  "CMakeFiles/qvt_bench_util.dir/figures.cc.o"
  "CMakeFiles/qvt_bench_util.dir/figures.cc.o.d"
  "CMakeFiles/qvt_bench_util.dir/index_suite.cc.o"
  "CMakeFiles/qvt_bench_util.dir/index_suite.cc.o.d"
  "CMakeFiles/qvt_bench_util.dir/runner.cc.o"
  "CMakeFiles/qvt_bench_util.dir/runner.cc.o.d"
  "libqvt_bench_util.a"
  "libqvt_bench_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qvt_bench_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
