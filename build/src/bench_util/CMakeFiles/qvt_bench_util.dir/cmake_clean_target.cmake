file(REMOVE_RECURSE
  "libqvt_bench_util.a"
)
