file(REMOVE_RECURSE
  "CMakeFiles/qvt_cluster.dir/bag.cc.o"
  "CMakeFiles/qvt_cluster.dir/bag.cc.o.d"
  "CMakeFiles/qvt_cluster.dir/birch.cc.o"
  "CMakeFiles/qvt_cluster.dir/birch.cc.o.d"
  "CMakeFiles/qvt_cluster.dir/chunker.cc.o"
  "CMakeFiles/qvt_cluster.dir/chunker.cc.o.d"
  "CMakeFiles/qvt_cluster.dir/kmeans.cc.o"
  "CMakeFiles/qvt_cluster.dir/kmeans.cc.o.d"
  "CMakeFiles/qvt_cluster.dir/outlier.cc.o"
  "CMakeFiles/qvt_cluster.dir/outlier.cc.o.d"
  "CMakeFiles/qvt_cluster.dir/round_robin.cc.o"
  "CMakeFiles/qvt_cluster.dir/round_robin.cc.o.d"
  "CMakeFiles/qvt_cluster.dir/srtree_chunker.cc.o"
  "CMakeFiles/qvt_cluster.dir/srtree_chunker.cc.o.d"
  "libqvt_cluster.a"
  "libqvt_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qvt_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
