
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cluster/bag.cc" "src/cluster/CMakeFiles/qvt_cluster.dir/bag.cc.o" "gcc" "src/cluster/CMakeFiles/qvt_cluster.dir/bag.cc.o.d"
  "/root/repo/src/cluster/birch.cc" "src/cluster/CMakeFiles/qvt_cluster.dir/birch.cc.o" "gcc" "src/cluster/CMakeFiles/qvt_cluster.dir/birch.cc.o.d"
  "/root/repo/src/cluster/chunker.cc" "src/cluster/CMakeFiles/qvt_cluster.dir/chunker.cc.o" "gcc" "src/cluster/CMakeFiles/qvt_cluster.dir/chunker.cc.o.d"
  "/root/repo/src/cluster/kmeans.cc" "src/cluster/CMakeFiles/qvt_cluster.dir/kmeans.cc.o" "gcc" "src/cluster/CMakeFiles/qvt_cluster.dir/kmeans.cc.o.d"
  "/root/repo/src/cluster/outlier.cc" "src/cluster/CMakeFiles/qvt_cluster.dir/outlier.cc.o" "gcc" "src/cluster/CMakeFiles/qvt_cluster.dir/outlier.cc.o.d"
  "/root/repo/src/cluster/round_robin.cc" "src/cluster/CMakeFiles/qvt_cluster.dir/round_robin.cc.o" "gcc" "src/cluster/CMakeFiles/qvt_cluster.dir/round_robin.cc.o.d"
  "/root/repo/src/cluster/srtree_chunker.cc" "src/cluster/CMakeFiles/qvt_cluster.dir/srtree_chunker.cc.o" "gcc" "src/cluster/CMakeFiles/qvt_cluster.dir/srtree_chunker.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/qvt_util.dir/DependInfo.cmake"
  "/root/repo/build/src/geometry/CMakeFiles/qvt_geometry.dir/DependInfo.cmake"
  "/root/repo/build/src/descriptor/CMakeFiles/qvt_descriptor.dir/DependInfo.cmake"
  "/root/repo/build/src/srtree/CMakeFiles/qvt_srtree.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
