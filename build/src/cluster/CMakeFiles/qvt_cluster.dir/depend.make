# Empty dependencies file for qvt_cluster.
# This may be replaced when dependencies are built.
