file(REMOVE_RECURSE
  "libqvt_cluster.a"
)
