file(REMOVE_RECURSE
  "libqvt_srtree.a"
)
