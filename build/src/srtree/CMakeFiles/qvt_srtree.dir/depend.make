# Empty dependencies file for qvt_srtree.
# This may be replaced when dependencies are built.
