file(REMOVE_RECURSE
  "CMakeFiles/qvt_srtree.dir/sr_tree.cc.o"
  "CMakeFiles/qvt_srtree.dir/sr_tree.cc.o.d"
  "libqvt_srtree.a"
  "libqvt_srtree.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qvt_srtree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
