file(REMOVE_RECURSE
  "libqvt_descriptor.a"
)
