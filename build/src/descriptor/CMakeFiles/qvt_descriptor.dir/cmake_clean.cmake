file(REMOVE_RECURSE
  "CMakeFiles/qvt_descriptor.dir/collection.cc.o"
  "CMakeFiles/qvt_descriptor.dir/collection.cc.o.d"
  "CMakeFiles/qvt_descriptor.dir/generator.cc.o"
  "CMakeFiles/qvt_descriptor.dir/generator.cc.o.d"
  "CMakeFiles/qvt_descriptor.dir/range_analysis.cc.o"
  "CMakeFiles/qvt_descriptor.dir/range_analysis.cc.o.d"
  "CMakeFiles/qvt_descriptor.dir/workload.cc.o"
  "CMakeFiles/qvt_descriptor.dir/workload.cc.o.d"
  "libqvt_descriptor.a"
  "libqvt_descriptor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qvt_descriptor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
