
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/descriptor/collection.cc" "src/descriptor/CMakeFiles/qvt_descriptor.dir/collection.cc.o" "gcc" "src/descriptor/CMakeFiles/qvt_descriptor.dir/collection.cc.o.d"
  "/root/repo/src/descriptor/generator.cc" "src/descriptor/CMakeFiles/qvt_descriptor.dir/generator.cc.o" "gcc" "src/descriptor/CMakeFiles/qvt_descriptor.dir/generator.cc.o.d"
  "/root/repo/src/descriptor/range_analysis.cc" "src/descriptor/CMakeFiles/qvt_descriptor.dir/range_analysis.cc.o" "gcc" "src/descriptor/CMakeFiles/qvt_descriptor.dir/range_analysis.cc.o.d"
  "/root/repo/src/descriptor/workload.cc" "src/descriptor/CMakeFiles/qvt_descriptor.dir/workload.cc.o" "gcc" "src/descriptor/CMakeFiles/qvt_descriptor.dir/workload.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/qvt_util.dir/DependInfo.cmake"
  "/root/repo/build/src/geometry/CMakeFiles/qvt_geometry.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
