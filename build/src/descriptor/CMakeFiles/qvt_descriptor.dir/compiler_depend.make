# Empty compiler generated dependencies file for qvt_descriptor.
# This may be replaced when dependencies are built.
