# Empty dependencies file for qvt_storage.
# This may be replaced when dependencies are built.
