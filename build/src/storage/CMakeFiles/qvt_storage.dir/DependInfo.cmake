
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/storage/chunk_cache.cc" "src/storage/CMakeFiles/qvt_storage.dir/chunk_cache.cc.o" "gcc" "src/storage/CMakeFiles/qvt_storage.dir/chunk_cache.cc.o.d"
  "/root/repo/src/storage/chunk_file.cc" "src/storage/CMakeFiles/qvt_storage.dir/chunk_file.cc.o" "gcc" "src/storage/CMakeFiles/qvt_storage.dir/chunk_file.cc.o.d"
  "/root/repo/src/storage/index_file.cc" "src/storage/CMakeFiles/qvt_storage.dir/index_file.cc.o" "gcc" "src/storage/CMakeFiles/qvt_storage.dir/index_file.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/qvt_util.dir/DependInfo.cmake"
  "/root/repo/build/src/geometry/CMakeFiles/qvt_geometry.dir/DependInfo.cmake"
  "/root/repo/build/src/descriptor/CMakeFiles/qvt_descriptor.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
