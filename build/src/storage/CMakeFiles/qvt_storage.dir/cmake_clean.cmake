file(REMOVE_RECURSE
  "CMakeFiles/qvt_storage.dir/chunk_cache.cc.o"
  "CMakeFiles/qvt_storage.dir/chunk_cache.cc.o.d"
  "CMakeFiles/qvt_storage.dir/chunk_file.cc.o"
  "CMakeFiles/qvt_storage.dir/chunk_file.cc.o.d"
  "CMakeFiles/qvt_storage.dir/index_file.cc.o"
  "CMakeFiles/qvt_storage.dir/index_file.cc.o.d"
  "libqvt_storage.a"
  "libqvt_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qvt_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
