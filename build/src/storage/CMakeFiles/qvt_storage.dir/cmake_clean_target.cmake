file(REMOVE_RECURSE
  "libqvt_storage.a"
)
