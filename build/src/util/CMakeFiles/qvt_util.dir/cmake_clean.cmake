file(REMOVE_RECURSE
  "CMakeFiles/qvt_util.dir/env.cc.o"
  "CMakeFiles/qvt_util.dir/env.cc.o.d"
  "CMakeFiles/qvt_util.dir/logging.cc.o"
  "CMakeFiles/qvt_util.dir/logging.cc.o.d"
  "CMakeFiles/qvt_util.dir/random.cc.o"
  "CMakeFiles/qvt_util.dir/random.cc.o.d"
  "CMakeFiles/qvt_util.dir/stats.cc.o"
  "CMakeFiles/qvt_util.dir/stats.cc.o.d"
  "CMakeFiles/qvt_util.dir/status.cc.o"
  "CMakeFiles/qvt_util.dir/status.cc.o.d"
  "CMakeFiles/qvt_util.dir/table.cc.o"
  "CMakeFiles/qvt_util.dir/table.cc.o.d"
  "libqvt_util.a"
  "libqvt_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qvt_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
