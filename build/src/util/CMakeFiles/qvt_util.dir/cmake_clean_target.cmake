file(REMOVE_RECURSE
  "libqvt_util.a"
)
