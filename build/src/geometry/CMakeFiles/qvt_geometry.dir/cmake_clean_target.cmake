file(REMOVE_RECURSE
  "libqvt_geometry.a"
)
