# Empty compiler generated dependencies file for qvt_geometry.
# This may be replaced when dependencies are built.
