file(REMOVE_RECURSE
  "CMakeFiles/qvt_geometry.dir/rect.cc.o"
  "CMakeFiles/qvt_geometry.dir/rect.cc.o.d"
  "CMakeFiles/qvt_geometry.dir/sphere.cc.o"
  "CMakeFiles/qvt_geometry.dir/sphere.cc.o.d"
  "CMakeFiles/qvt_geometry.dir/vec.cc.o"
  "CMakeFiles/qvt_geometry.dir/vec.cc.o.d"
  "libqvt_geometry.a"
  "libqvt_geometry.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qvt_geometry.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
