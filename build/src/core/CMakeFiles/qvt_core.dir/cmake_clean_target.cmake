file(REMOVE_RECURSE
  "libqvt_core.a"
)
