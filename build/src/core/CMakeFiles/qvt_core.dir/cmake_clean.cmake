file(REMOVE_RECURSE
  "CMakeFiles/qvt_core.dir/chunk_index.cc.o"
  "CMakeFiles/qvt_core.dir/chunk_index.cc.o.d"
  "CMakeFiles/qvt_core.dir/evaluation.cc.o"
  "CMakeFiles/qvt_core.dir/evaluation.cc.o.d"
  "CMakeFiles/qvt_core.dir/exact_scan.cc.o"
  "CMakeFiles/qvt_core.dir/exact_scan.cc.o.d"
  "CMakeFiles/qvt_core.dir/image_search.cc.o"
  "CMakeFiles/qvt_core.dir/image_search.cc.o.d"
  "CMakeFiles/qvt_core.dir/lsh.cc.o"
  "CMakeFiles/qvt_core.dir/lsh.cc.o.d"
  "CMakeFiles/qvt_core.dir/medrank.cc.o"
  "CMakeFiles/qvt_core.dir/medrank.cc.o.d"
  "CMakeFiles/qvt_core.dir/psphere.cc.o"
  "CMakeFiles/qvt_core.dir/psphere.cc.o.d"
  "CMakeFiles/qvt_core.dir/result_set.cc.o"
  "CMakeFiles/qvt_core.dir/result_set.cc.o.d"
  "CMakeFiles/qvt_core.dir/searcher.cc.o"
  "CMakeFiles/qvt_core.dir/searcher.cc.o.d"
  "CMakeFiles/qvt_core.dir/va_file.cc.o"
  "CMakeFiles/qvt_core.dir/va_file.cc.o.d"
  "libqvt_core.a"
  "libqvt_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qvt_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
