
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/chunk_index.cc" "src/core/CMakeFiles/qvt_core.dir/chunk_index.cc.o" "gcc" "src/core/CMakeFiles/qvt_core.dir/chunk_index.cc.o.d"
  "/root/repo/src/core/evaluation.cc" "src/core/CMakeFiles/qvt_core.dir/evaluation.cc.o" "gcc" "src/core/CMakeFiles/qvt_core.dir/evaluation.cc.o.d"
  "/root/repo/src/core/exact_scan.cc" "src/core/CMakeFiles/qvt_core.dir/exact_scan.cc.o" "gcc" "src/core/CMakeFiles/qvt_core.dir/exact_scan.cc.o.d"
  "/root/repo/src/core/image_search.cc" "src/core/CMakeFiles/qvt_core.dir/image_search.cc.o" "gcc" "src/core/CMakeFiles/qvt_core.dir/image_search.cc.o.d"
  "/root/repo/src/core/lsh.cc" "src/core/CMakeFiles/qvt_core.dir/lsh.cc.o" "gcc" "src/core/CMakeFiles/qvt_core.dir/lsh.cc.o.d"
  "/root/repo/src/core/medrank.cc" "src/core/CMakeFiles/qvt_core.dir/medrank.cc.o" "gcc" "src/core/CMakeFiles/qvt_core.dir/medrank.cc.o.d"
  "/root/repo/src/core/psphere.cc" "src/core/CMakeFiles/qvt_core.dir/psphere.cc.o" "gcc" "src/core/CMakeFiles/qvt_core.dir/psphere.cc.o.d"
  "/root/repo/src/core/result_set.cc" "src/core/CMakeFiles/qvt_core.dir/result_set.cc.o" "gcc" "src/core/CMakeFiles/qvt_core.dir/result_set.cc.o.d"
  "/root/repo/src/core/searcher.cc" "src/core/CMakeFiles/qvt_core.dir/searcher.cc.o" "gcc" "src/core/CMakeFiles/qvt_core.dir/searcher.cc.o.d"
  "/root/repo/src/core/va_file.cc" "src/core/CMakeFiles/qvt_core.dir/va_file.cc.o" "gcc" "src/core/CMakeFiles/qvt_core.dir/va_file.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/qvt_util.dir/DependInfo.cmake"
  "/root/repo/build/src/geometry/CMakeFiles/qvt_geometry.dir/DependInfo.cmake"
  "/root/repo/build/src/descriptor/CMakeFiles/qvt_descriptor.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/qvt_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/qvt_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/srtree/CMakeFiles/qvt_srtree.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
