# Empty dependencies file for qvt_core.
# This may be replaced when dependencies are built.
