file(REMOVE_RECURSE
  "CMakeFiles/qvt_tool.dir/qvt_tool.cc.o"
  "CMakeFiles/qvt_tool.dir/qvt_tool.cc.o.d"
  "qvt_tool"
  "qvt_tool.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qvt_tool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
