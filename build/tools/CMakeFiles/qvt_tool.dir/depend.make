# Empty dependencies file for qvt_tool.
# This may be replaced when dependencies are built.
