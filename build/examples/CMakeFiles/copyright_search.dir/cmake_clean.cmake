file(REMOVE_RECURSE
  "CMakeFiles/copyright_search.dir/copyright_search.cpp.o"
  "CMakeFiles/copyright_search.dir/copyright_search.cpp.o.d"
  "copyright_search"
  "copyright_search.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/copyright_search.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
