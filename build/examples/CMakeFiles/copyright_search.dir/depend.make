# Empty dependencies file for copyright_search.
# This may be replaced when dependencies are built.
