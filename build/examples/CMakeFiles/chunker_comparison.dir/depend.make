# Empty dependencies file for chunker_comparison.
# This may be replaced when dependencies are built.
