file(REMOVE_RECURSE
  "CMakeFiles/chunker_comparison.dir/chunker_comparison.cpp.o"
  "CMakeFiles/chunker_comparison.dir/chunker_comparison.cpp.o.d"
  "chunker_comparison"
  "chunker_comparison.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/chunker_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
