file(REMOVE_RECURSE
  "CMakeFiles/quality_time_tradeoff.dir/quality_time_tradeoff.cpp.o"
  "CMakeFiles/quality_time_tradeoff.dir/quality_time_tradeoff.cpp.o.d"
  "quality_time_tradeoff"
  "quality_time_tradeoff.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/quality_time_tradeoff.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
