# Empty dependencies file for quality_time_tradeoff.
# This may be replaced when dependencies are built.
