# Empty compiler generated dependencies file for bench_fig2_chunks_read_dq.
# This may be replaced when dependencies are built.
