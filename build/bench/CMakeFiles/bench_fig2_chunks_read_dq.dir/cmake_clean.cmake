file(REMOVE_RECURSE
  "CMakeFiles/bench_fig2_chunks_read_dq.dir/bench_fig2_chunks_read_dq.cc.o"
  "CMakeFiles/bench_fig2_chunks_read_dq.dir/bench_fig2_chunks_read_dq.cc.o.d"
  "bench_fig2_chunks_read_dq"
  "bench_fig2_chunks_read_dq.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_chunks_read_dq.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
