file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_chunks_read_sq.dir/bench_fig3_chunks_read_sq.cc.o"
  "CMakeFiles/bench_fig3_chunks_read_sq.dir/bench_fig3_chunks_read_sq.cc.o.d"
  "bench_fig3_chunks_read_sq"
  "bench_fig3_chunks_read_sq.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_chunks_read_sq.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
