# Empty dependencies file for bench_fig3_chunks_read_sq.
# This may be replaced when dependencies are built.
