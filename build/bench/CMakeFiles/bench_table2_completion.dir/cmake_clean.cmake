file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_completion.dir/bench_table2_completion.cc.o"
  "CMakeFiles/bench_table2_completion.dir/bench_table2_completion.cc.o.d"
  "bench_table2_completion"
  "bench_table2_completion.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_completion.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
