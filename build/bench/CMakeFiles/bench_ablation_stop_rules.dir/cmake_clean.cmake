file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_stop_rules.dir/bench_ablation_stop_rules.cc.o"
  "CMakeFiles/bench_ablation_stop_rules.dir/bench_ablation_stop_rules.cc.o.d"
  "bench_ablation_stop_rules"
  "bench_ablation_stop_rules.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_stop_rules.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
