# Empty dependencies file for bench_ablation_stop_rules.
# This may be replaced when dependencies are built.
