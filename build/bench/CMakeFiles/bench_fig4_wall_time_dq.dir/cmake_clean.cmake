file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_wall_time_dq.dir/bench_fig4_wall_time_dq.cc.o"
  "CMakeFiles/bench_fig4_wall_time_dq.dir/bench_fig4_wall_time_dq.cc.o.d"
  "bench_fig4_wall_time_dq"
  "bench_fig4_wall_time_dq.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_wall_time_dq.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
