# Empty compiler generated dependencies file for bench_fig4_wall_time_dq.
# This may be replaced when dependencies are built.
