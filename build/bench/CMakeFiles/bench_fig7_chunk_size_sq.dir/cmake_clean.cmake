file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_chunk_size_sq.dir/bench_fig7_chunk_size_sq.cc.o"
  "CMakeFiles/bench_fig7_chunk_size_sq.dir/bench_fig7_chunk_size_sq.cc.o.d"
  "bench_fig7_chunk_size_sq"
  "bench_fig7_chunk_size_sq.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_chunk_size_sq.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
