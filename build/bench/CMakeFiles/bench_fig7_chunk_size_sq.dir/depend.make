# Empty dependencies file for bench_fig7_chunk_size_sq.
# This may be replaced when dependencies are built.
