# Empty dependencies file for bench_fig6_chunk_size_dq.
# This may be replaced when dependencies are built.
