file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_chunk_size_dq.dir/bench_fig6_chunk_size_dq.cc.o"
  "CMakeFiles/bench_fig6_chunk_size_dq.dir/bench_fig6_chunk_size_dq.cc.o.d"
  "bench_fig6_chunk_size_dq"
  "bench_fig6_chunk_size_dq.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_chunk_size_dq.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
