file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_outliers.dir/bench_ablation_outliers.cc.o"
  "CMakeFiles/bench_ablation_outliers.dir/bench_ablation_outliers.cc.o.d"
  "bench_ablation_outliers"
  "bench_ablation_outliers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_outliers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
