file(REMOVE_RECURSE
  "CMakeFiles/bench_fig1_largest_chunks.dir/bench_fig1_largest_chunks.cc.o"
  "CMakeFiles/bench_fig1_largest_chunks.dir/bench_fig1_largest_chunks.cc.o.d"
  "bench_fig1_largest_chunks"
  "bench_fig1_largest_chunks.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig1_largest_chunks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
