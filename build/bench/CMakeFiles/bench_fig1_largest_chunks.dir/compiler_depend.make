# Empty compiler generated dependencies file for bench_fig1_largest_chunks.
# This may be replaced when dependencies are built.
