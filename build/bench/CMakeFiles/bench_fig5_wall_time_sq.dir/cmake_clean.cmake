file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_wall_time_sq.dir/bench_fig5_wall_time_sq.cc.o"
  "CMakeFiles/bench_fig5_wall_time_sq.dir/bench_fig5_wall_time_sq.cc.o.d"
  "bench_fig5_wall_time_sq"
  "bench_fig5_wall_time_sq.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_wall_time_sq.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
