# Empty compiler generated dependencies file for bench_fig5_wall_time_sq.
# This may be replaced when dependencies are built.
