# Empty dependencies file for bench_ablation_chunkers.
# This may be replaced when dependencies are built.
