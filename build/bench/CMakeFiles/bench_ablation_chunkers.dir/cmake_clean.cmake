file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_chunkers.dir/bench_ablation_chunkers.cc.o"
  "CMakeFiles/bench_ablation_chunkers.dir/bench_ablation_chunkers.cc.o.d"
  "bench_ablation_chunkers"
  "bench_ablation_chunkers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_chunkers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
