# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for storage_index_file_test.
