# Empty dependencies file for geometry_sphere_test.
# This may be replaced when dependencies are built.
