file(REMOVE_RECURSE
  "CMakeFiles/geometry_sphere_test.dir/geometry_sphere_test.cc.o"
  "CMakeFiles/geometry_sphere_test.dir/geometry_sphere_test.cc.o.d"
  "geometry_sphere_test"
  "geometry_sphere_test.pdb"
  "geometry_sphere_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/geometry_sphere_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
