file(REMOVE_RECURSE
  "CMakeFiles/geometry_vec_test.dir/geometry_vec_test.cc.o"
  "CMakeFiles/geometry_vec_test.dir/geometry_vec_test.cc.o.d"
  "geometry_vec_test"
  "geometry_vec_test.pdb"
  "geometry_vec_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/geometry_vec_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
