# Empty compiler generated dependencies file for core_result_set_test.
# This may be replaced when dependencies are built.
