# Empty compiler generated dependencies file for core_medrank_test.
# This may be replaced when dependencies are built.
