file(REMOVE_RECURSE
  "CMakeFiles/core_medrank_test.dir/core_medrank_test.cc.o"
  "CMakeFiles/core_medrank_test.dir/core_medrank_test.cc.o.d"
  "core_medrank_test"
  "core_medrank_test.pdb"
  "core_medrank_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_medrank_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
