file(REMOVE_RECURSE
  "CMakeFiles/storage_chunk_cache_test.dir/storage_chunk_cache_test.cc.o"
  "CMakeFiles/storage_chunk_cache_test.dir/storage_chunk_cache_test.cc.o.d"
  "storage_chunk_cache_test"
  "storage_chunk_cache_test.pdb"
  "storage_chunk_cache_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/storage_chunk_cache_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
