# Empty dependencies file for cluster_birch_test.
# This may be replaced when dependencies are built.
