file(REMOVE_RECURSE
  "CMakeFiles/core_va_file_test.dir/core_va_file_test.cc.o"
  "CMakeFiles/core_va_file_test.dir/core_va_file_test.cc.o.d"
  "core_va_file_test"
  "core_va_file_test.pdb"
  "core_va_file_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_va_file_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
