# Empty dependencies file for storage_chunk_file_test.
# This may be replaced when dependencies are built.
