file(REMOVE_RECURSE
  "CMakeFiles/storage_cost_model_test.dir/storage_cost_model_test.cc.o"
  "CMakeFiles/storage_cost_model_test.dir/storage_cost_model_test.cc.o.d"
  "storage_cost_model_test"
  "storage_cost_model_test.pdb"
  "storage_cost_model_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/storage_cost_model_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
