# Empty dependencies file for bench_util_figures_test.
# This may be replaced when dependencies are built.
