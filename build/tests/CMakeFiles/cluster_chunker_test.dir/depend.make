# Empty dependencies file for cluster_chunker_test.
# This may be replaced when dependencies are built.
