file(REMOVE_RECURSE
  "CMakeFiles/cluster_chunker_test.dir/cluster_chunker_test.cc.o"
  "CMakeFiles/cluster_chunker_test.dir/cluster_chunker_test.cc.o.d"
  "cluster_chunker_test"
  "cluster_chunker_test.pdb"
  "cluster_chunker_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cluster_chunker_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
