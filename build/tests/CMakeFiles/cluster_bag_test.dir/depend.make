# Empty dependencies file for cluster_bag_test.
# This may be replaced when dependencies are built.
