file(REMOVE_RECURSE
  "CMakeFiles/cluster_bag_test.dir/cluster_bag_test.cc.o"
  "CMakeFiles/cluster_bag_test.dir/cluster_bag_test.cc.o.d"
  "cluster_bag_test"
  "cluster_bag_test.pdb"
  "cluster_bag_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cluster_bag_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
