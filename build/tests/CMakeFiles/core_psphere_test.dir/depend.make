# Empty dependencies file for core_psphere_test.
# This may be replaced when dependencies are built.
