file(REMOVE_RECURSE
  "CMakeFiles/core_psphere_test.dir/core_psphere_test.cc.o"
  "CMakeFiles/core_psphere_test.dir/core_psphere_test.cc.o.d"
  "core_psphere_test"
  "core_psphere_test.pdb"
  "core_psphere_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_psphere_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
