file(REMOVE_RECURSE
  "CMakeFiles/descriptor_workload_test.dir/descriptor_workload_test.cc.o"
  "CMakeFiles/descriptor_workload_test.dir/descriptor_workload_test.cc.o.d"
  "descriptor_workload_test"
  "descriptor_workload_test.pdb"
  "descriptor_workload_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/descriptor_workload_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
