# Empty compiler generated dependencies file for descriptor_workload_test.
# This may be replaced when dependencies are built.
