file(REMOVE_RECURSE
  "CMakeFiles/geometry_rect_test.dir/geometry_rect_test.cc.o"
  "CMakeFiles/geometry_rect_test.dir/geometry_rect_test.cc.o.d"
  "geometry_rect_test"
  "geometry_rect_test.pdb"
  "geometry_rect_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/geometry_rect_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
