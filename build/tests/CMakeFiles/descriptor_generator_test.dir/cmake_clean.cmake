file(REMOVE_RECURSE
  "CMakeFiles/descriptor_generator_test.dir/descriptor_generator_test.cc.o"
  "CMakeFiles/descriptor_generator_test.dir/descriptor_generator_test.cc.o.d"
  "descriptor_generator_test"
  "descriptor_generator_test.pdb"
  "descriptor_generator_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/descriptor_generator_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
