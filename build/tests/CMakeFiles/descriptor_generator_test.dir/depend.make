# Empty dependencies file for descriptor_generator_test.
# This may be replaced when dependencies are built.
