# Empty dependencies file for descriptor_collection_test.
# This may be replaced when dependencies are built.
