file(REMOVE_RECURSE
  "CMakeFiles/descriptor_collection_test.dir/descriptor_collection_test.cc.o"
  "CMakeFiles/descriptor_collection_test.dir/descriptor_collection_test.cc.o.d"
  "descriptor_collection_test"
  "descriptor_collection_test.pdb"
  "descriptor_collection_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/descriptor_collection_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
