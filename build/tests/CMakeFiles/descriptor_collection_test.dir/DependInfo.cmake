
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/descriptor_collection_test.cc" "tests/CMakeFiles/descriptor_collection_test.dir/descriptor_collection_test.cc.o" "gcc" "tests/CMakeFiles/descriptor_collection_test.dir/descriptor_collection_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/bench_util/CMakeFiles/qvt_bench_util.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/qvt_core.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/qvt_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/srtree/CMakeFiles/qvt_srtree.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/qvt_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/descriptor/CMakeFiles/qvt_descriptor.dir/DependInfo.cmake"
  "/root/repo/build/src/geometry/CMakeFiles/qvt_geometry.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/qvt_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
