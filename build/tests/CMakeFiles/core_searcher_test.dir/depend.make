# Empty dependencies file for core_searcher_test.
# This may be replaced when dependencies are built.
