file(REMOVE_RECURSE
  "CMakeFiles/core_searcher_test.dir/core_searcher_test.cc.o"
  "CMakeFiles/core_searcher_test.dir/core_searcher_test.cc.o.d"
  "core_searcher_test"
  "core_searcher_test.pdb"
  "core_searcher_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_searcher_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
