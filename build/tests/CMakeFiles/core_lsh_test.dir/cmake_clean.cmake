file(REMOVE_RECURSE
  "CMakeFiles/core_lsh_test.dir/core_lsh_test.cc.o"
  "CMakeFiles/core_lsh_test.dir/core_lsh_test.cc.o.d"
  "core_lsh_test"
  "core_lsh_test.pdb"
  "core_lsh_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_lsh_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
