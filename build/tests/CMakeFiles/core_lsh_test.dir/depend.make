# Empty dependencies file for core_lsh_test.
# This may be replaced when dependencies are built.
