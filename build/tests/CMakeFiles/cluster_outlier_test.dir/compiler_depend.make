# Empty compiler generated dependencies file for cluster_outlier_test.
# This may be replaced when dependencies are built.
