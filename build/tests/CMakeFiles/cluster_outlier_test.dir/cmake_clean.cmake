file(REMOVE_RECURSE
  "CMakeFiles/cluster_outlier_test.dir/cluster_outlier_test.cc.o"
  "CMakeFiles/cluster_outlier_test.dir/cluster_outlier_test.cc.o.d"
  "cluster_outlier_test"
  "cluster_outlier_test.pdb"
  "cluster_outlier_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cluster_outlier_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
