# Empty compiler generated dependencies file for srtree_test.
# This may be replaced when dependencies are built.
